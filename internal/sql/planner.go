package sql

import (
	"fmt"
	"strings"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

// Plan lowers a parsed statement to an engine plan tree. The planner:
//
//   - resolves columns to tables (bare names must be unambiguous; aliased
//     references use "alias.col"),
//   - splits WHERE into per-table filters (pushed into scans — the
//     predicates the cache keys on), equi-join edges, and residual
//     post-join filters,
//   - orders joins largest-table-first so that fact tables sit on the probe
//     side and dimension scans on the build side, enabling semi-join-filter
//     pushdown (§4.4),
//   - lowers aggregates, HAVING, ORDER BY and LIMIT.
func Plan(stmt *SelectStmt, cat *storage.Catalog) (engine.Node, error) {
	return PlanWith(stmt, cat, nil)
}

// VirtualResolver resolves schema-qualified system-table names (the `pc`
// schema) to their providers. A nil resolver plans against base tables only.
type VirtualResolver interface {
	VirtualTable(name string) (engine.VirtualTable, bool)
}

// PlanWith plans a statement against the catalog plus a resolver for
// virtual system tables, which lower to engine.VirtualScan nodes.
func PlanWith(stmt *SelectStmt, cat *storage.Catalog, virt VirtualResolver) (engine.Node, error) {
	pl := &planner{cat: cat, virt: virt, stmt: stmt}
	return pl.plan()
}

// PlanSQL parses and plans in one step.
func PlanSQL(query string, cat *storage.Catalog) (engine.Node, error) {
	return PlanSQLWith(query, cat, nil)
}

// PlanSQLWith parses and plans with virtual-table resolution.
func PlanSQLWith(query string, cat *storage.Catalog, virt VirtualResolver) (engine.Node, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return PlanWith(stmt, cat, virt)
}

type tableInfo struct {
	ref TableRef
	// Exactly one of tbl (base table) and vt (virtual system table) is set;
	// schema and rows describe whichever it is.
	tbl    *storage.Table
	vt     engine.VirtualTable
	schema storage.Schema
	rows   int
	// filters are single-table conjuncts in base-column names.
	filters []expr.Pred
}

type joinEdge struct {
	a, b       int    // table indexes
	aCol, bCol string // relation-level (possibly aliased) column names
}

type planner struct {
	cat  *storage.Catalog
	virt VirtualResolver
	stmt *SelectStmt

	tables []*tableInfo
	// colOwner maps bare column names to the owning table index, or -2 when
	// ambiguous.
	colOwner map[string]int
	edges    []joinEdge
	residual []expr.Pred
}

// outName returns the relation-level name a base column gets after the
// table's scan (alias-prefixed when the table is aliased).
func (pl *planner) outName(ti int, col string) string {
	if a := pl.tables[ti].ref.Alias; a != "" {
		return a + "." + col
	}
	return col
}

// resolve maps a written column reference to (table index, base column).
func (pl *planner) resolve(name string) (int, string, error) {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		alias, col := name[:i], name[i+1:]
		for ti, t := range pl.tables {
			if t.ref.Alias == alias || (t.ref.Alias == "" && t.ref.Table == alias) {
				if t.schema.ColumnIndex(col) < 0 {
					return 0, "", fmt.Errorf("sql: table %s has no column %q", t.ref.Table, col)
				}
				return ti, col, nil
			}
		}
		return 0, "", fmt.Errorf("sql: unknown table alias %q", alias)
	}
	ti, ok := pl.colOwner[name]
	if !ok {
		return 0, "", fmt.Errorf("sql: unknown column %q", name)
	}
	if ti == -2 {
		return 0, "", fmt.Errorf("sql: ambiguous column %q", name)
	}
	return ti, name, nil
}

// relName rewrites a written column reference to its relation-level name.
func (pl *planner) relName(name string) (string, error) {
	ti, col, err := pl.resolve(name)
	if err != nil {
		return "", err
	}
	return pl.outName(ti, col), nil
}

func (pl *planner) plan() (engine.Node, error) {
	if len(pl.stmt.From) == 0 {
		return nil, fmt.Errorf("sql: FROM required")
	}
	pl.colOwner = make(map[string]int)
	seen := map[string]bool{}
	for _, ref := range pl.stmt.From {
		ti := len(pl.tables)
		if vt, ok := pl.resolveVirtual(ref.Table); ok {
			pl.tables = append(pl.tables, &tableInfo{ref: ref, vt: vt, schema: vt.Schema(), rows: vt.NumRows()})
		} else {
			tbl, ok := pl.cat.Table(ref.Table)
			if !ok {
				return nil, fmt.Errorf("sql: unknown table %q", ref.Table)
			}
			pl.tables = append(pl.tables, &tableInfo{ref: ref, tbl: tbl, schema: tbl.Schema(), rows: tbl.NumRows()})
		}
		key := ref.Alias
		if key == "" {
			key = ref.Table
		}
		if seen[key] {
			return nil, fmt.Errorf("sql: duplicate table reference %q (use aliases)", key)
		}
		seen[key] = true
		for _, def := range pl.tables[ti].schema {
			if prev, ok := pl.colOwner[def.Name]; ok && prev != ti {
				pl.colOwner[def.Name] = -2
			} else {
				pl.colOwner[def.Name] = ti
			}
		}
	}

	if pl.stmt.Where != nil {
		if err := pl.classifyWhere(pl.stmt.Where); err != nil {
			return nil, err
		}
	}

	node, err := pl.buildJoinTree()
	if err != nil {
		return nil, err
	}
	for _, res := range pl.residual {
		node = &engine.Filter{Input: node, Pred: res}
	}
	out, err := pl.buildOutput(node)
	if err != nil {
		return nil, err
	}
	// Narrow each scan to the columns consumed above it so the engine's
	// partial decoder only materializes what the query reads.
	engine.PruneScanProjections(out, pl.cat)
	return out, nil
}

// classifyWhere splits the top-level conjunction.
func (pl *planner) classifyWhere(p expr.Pred) error {
	conjuncts := []expr.Pred{p}
	if ap, ok := p.(*expr.AndPred); ok {
		conjuncts = ap.Children
	}
	for _, c := range conjuncts {
		if err := pl.classifyConjunct(c); err != nil {
			return err
		}
	}
	return nil
}

func (pl *planner) classifyConjunct(c expr.Pred) error {
	// Equi-join edge?
	if cc, ok := c.(*expr.CmpColsPred); ok && cc.Op == expr.Eq {
		ta, ca, err := pl.resolve(cc.ColA)
		if err != nil {
			return err
		}
		tb, cb, err := pl.resolve(cc.ColB)
		if err != nil {
			return err
		}
		if ta != tb {
			pl.edges = append(pl.edges, joinEdge{
				a: ta, b: tb,
				aCol: pl.outName(ta, ca), bCol: pl.outName(tb, cb),
			})
			return nil
		}
	}
	// Determine the set of referenced tables.
	cols := c.Columns(nil)
	tset := map[int]bool{}
	for _, col := range cols {
		ti, _, err := pl.resolve(col)
		if err != nil {
			return err
		}
		tset[ti] = true
	}
	if len(tset) == 1 {
		var ti int
		for t := range tset {
			ti = t
		}
		base, err := rewriteToBase(c, func(name string) (string, error) {
			_, col, err := pl.resolve(name)
			return col, err
		})
		if err != nil {
			return err
		}
		pl.tables[ti].filters = append(pl.tables[ti].filters, base)
		return nil
	}
	// Multi-table disjunctions get per-table implied filters factored out
	// and pushed into the scans (classic predicate derivation): for
	// Q19-style ORs of conjunctions, every disjunct's single-table parts
	// OR together into a necessary condition for that table. The exact
	// predicate is still applied as a residual after the join.
	if orPred, isOr := c.(*expr.OrPred); isOr {
		if err := pl.factorDisjunction(orPred); err != nil {
			return err
		}
	}
	// Residual multi-table predicate: rewrite to relation names.
	rel, err := rewriteToBase(c, pl.relName)
	if err != nil {
		return err
	}
	pl.residual = append(pl.residual, rel)
	return nil
}

// factorDisjunction pushes per-table implied filters derived from a
// multi-table OR into the scans. For table t the implied filter is the OR
// over disjuncts of each disjunct's t-only conjuncts; it exists only when
// every disjunct constrains t.
func (pl *planner) factorDisjunction(orPred *expr.OrPred) error {
	for ti := range pl.tables {
		var perDisjunct []expr.Pred
		complete := true
		for _, d := range orPred.Children {
			conjs := []expr.Pred{d}
			if ap, isAnd := d.(*expr.AndPred); isAnd {
				conjs = ap.Children
			}
			var mine []expr.Pred
			for _, cj := range conjs {
				onTable := true
				for _, col := range cj.Columns(nil) {
					owner, _, err := pl.resolve(col)
					if err != nil {
						return err
					}
					if owner != ti {
						onTable = false
						break
					}
				}
				if onTable {
					mine = append(mine, cj)
				}
			}
			if len(mine) == 0 {
				complete = false
				break
			}
			perDisjunct = append(perDisjunct, expr.And(mine...))
		}
		if !complete || len(perDisjunct) == 0 {
			continue
		}
		implied, err := rewriteToBase(expr.Or(perDisjunct...), func(name string) (string, error) {
			_, col, err := pl.resolve(name)
			return col, err
		})
		if err != nil {
			return err
		}
		pl.tables[ti].filters = append(pl.tables[ti].filters, implied)
	}
	return nil
}

// rewriteToBase renames every column reference in the predicate.
func rewriteToBase(p expr.Pred, rename func(string) (string, error)) (expr.Pred, error) {
	switch t := p.(type) {
	case *expr.CmpPred:
		n, err := rename(t.Col)
		if err != nil {
			return nil, err
		}
		return expr.Cmp(n, t.Op, t.Val), nil
	case *expr.CmpColsPred:
		na, err := rename(t.ColA)
		if err != nil {
			return nil, err
		}
		nb, err := rename(t.ColB)
		if err != nil {
			return nil, err
		}
		return expr.CmpCols(na, t.Op, nb), nil
	case *expr.BetweenPred:
		n, err := rename(t.Col)
		if err != nil {
			return nil, err
		}
		return expr.Between(n, t.Lo, t.Hi), nil
	case *expr.InPred:
		n, err := rename(t.Col)
		if err != nil {
			return nil, err
		}
		return expr.In(n, t.Vals...), nil
	case *expr.LikePred:
		n, err := rename(t.Col)
		if err != nil {
			return nil, err
		}
		if t.Negate {
			return expr.NotLike(n, t.Pattern), nil
		}
		return expr.Like(n, t.Pattern), nil
	case *expr.AndPred:
		out := make([]expr.Pred, len(t.Children))
		for i, ch := range t.Children {
			c, err := rewriteToBase(ch, rename)
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return expr.And(out...), nil
	case *expr.OrPred:
		out := make([]expr.Pred, len(t.Children))
		for i, ch := range t.Children {
			c, err := rewriteToBase(ch, rename)
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return expr.Or(out...), nil
	case *expr.NotPred:
		c, err := rewriteToBase(t.Child, rename)
		if err != nil {
			return nil, err
		}
		return expr.Not(c), nil
	case expr.TruePred, *expr.TruePred:
		return expr.TruePred{}, nil
	}
	return nil, fmt.Errorf("sql: cannot rewrite predicate %T", p)
}

// resolveVirtual maps a (qualified) table name to its virtual provider.
func (pl *planner) resolveVirtual(name string) (engine.VirtualTable, bool) {
	if pl.virt == nil {
		return nil, false
	}
	return pl.virt.VirtualTable(name)
}

// scanFor builds the scan node for table ti.
func (pl *planner) scanFor(ti int) engine.Node {
	t := pl.tables[ti]
	if t.vt != nil {
		return &engine.VirtualScan{
			Source: t.vt,
			Filter: expr.And(t.filters...),
			Alias:  t.ref.Alias,
		}
	}
	return &engine.Scan{
		Table:  t.ref.Table,
		Filter: expr.And(t.filters...),
		Alias:  t.ref.Alias,
	}
}

// buildJoinTree orders the joins: the largest table is the probe (left)
// side; remaining tables join in by connectivity, preferring smaller build
// sides first.
func (pl *planner) buildJoinTree() (engine.Node, error) {
	n := len(pl.tables)
	if n == 1 {
		return pl.scanFor(0), nil
	}
	// Pick the largest table as the anchor.
	anchor := 0
	for i := 1; i < n; i++ {
		if pl.tables[i].rows > pl.tables[anchor].rows {
			anchor = i
		}
	}
	inTree := make([]bool, n)
	inTree[anchor] = true
	node := pl.scanFor(anchor)
	remaining := n - 1
	edgeUsed := make([]bool, len(pl.edges))
	for remaining > 0 {
		// Pick the connected table with the lowest expected join fanout
		// (rows divided by distinct values of its join column: ~1 for
		// key-foreign-key edges), breaking ties by size. This keeps
		// many-to-many edges (e.g. TPC-H Q5's c_nationkey = s_nationkey)
		// from joining before the key edges that restrict them.
		best := -1
		bestFanout := 0.0
		for ti := 0; ti < n; ti++ {
			if inTree[ti] {
				continue
			}
			fanout := -1.0
			for _, e := range pl.edges {
				var col string
				switch {
				case e.a == ti && inTree[e.b]:
					col = e.aCol
				case e.b == ti && inTree[e.a]:
					col = e.bCol
				default:
					continue
				}
				f := pl.edgeFanout(ti, col)
				if fanout < 0 || f < fanout {
					fanout = f
				}
			}
			if fanout < 0 {
				continue // not connected
			}
			if best < 0 || fanout < bestFanout ||
				(fanout == bestFanout && pl.tables[ti].rows < pl.tables[best].rows) {
				best = ti
				bestFanout = fanout
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("sql: tables are not connected by join predicates (cartesian products unsupported)")
		}
		// Collect all usable edges between the tree and `best`.
		var leftKeys, rightKeys []string
		for ei, e := range pl.edges {
			if edgeUsed[ei] {
				continue
			}
			switch {
			case e.a == best && inTree[e.b]:
				leftKeys = append(leftKeys, e.bCol)
				rightKeys = append(rightKeys, e.aCol)
				edgeUsed[ei] = true
			case e.b == best && inTree[e.a]:
				leftKeys = append(leftKeys, e.aCol)
				rightKeys = append(rightKeys, e.bCol)
				edgeUsed[ei] = true
			}
		}
		node = &engine.Join{
			Left:         node,
			Right:        pl.scanFor(best),
			LeftKeys:     leftKeys,
			RightKeys:    rightKeys,
			Type:         engine.InnerJoin,
			PushSemiJoin: true,
		}
		inTree[best] = true
		remaining--
	}
	return node, nil
}

// edgeFanout estimates the average number of rows of table ti matching one
// probe key on the given (relation-level) column.
func (pl *planner) edgeFanout(ti int, relCol string) float64 {
	t := pl.tables[ti]
	if t.tbl == nil {
		// Virtual tables carry no distinct-count statistics; assume key-like.
		return 1
	}
	col := relCol
	if a := t.ref.Alias; a != "" && strings.HasPrefix(relCol, a+".") {
		col = relCol[len(a)+1:]
	}
	ci := t.tbl.ColumnIndex(col)
	if ci < 0 || t.rows == 0 {
		return 1
	}
	d := t.tbl.DistinctCount(ci)
	if d == 0 {
		return 1
	}
	return float64(t.rows) / float64(d)
}

// buildOutput lowers select items, grouping, having, order by and limit on
// top of the joined relation.
func (pl *planner) buildOutput(input engine.Node) (engine.Node, error) {
	stmt := pl.stmt

	// `select *`: emit the joined relation as-is (ORDER BY/LIMIT still
	// apply; grouping and mixing with other items are rejected).
	for _, it := range stmt.Items {
		if !it.Star {
			continue
		}
		if len(stmt.Items) != 1 || len(stmt.GroupBy) > 0 || len(stmt.Having) > 0 {
			return nil, fmt.Errorf("sql: * must be the only select item and cannot be grouped")
		}
		node := input
		if len(stmt.OrderBy) > 0 {
			srt := &engine.Sort{Input: node}
			for _, oi := range stmt.OrderBy {
				if oi.Col == "" {
					return nil, fmt.Errorf("sql: ORDER BY with * needs column names")
				}
				n, err := pl.relName(oi.Col)
				if err != nil {
					return nil, err
				}
				srt.Keys = append(srt.Keys, engine.SortKey{Col: n, Desc: oi.Desc})
			}
			node = srt
		}
		if stmt.Limit >= 0 {
			node = &engine.Limit{Input: node, N: stmt.Limit}
		}
		return node, nil
	}

	// Rewrite column references in select scalars to relation names, and
	// collect aggregate specs (deduplicated by canonical name).
	aggByName := map[string]*engine.AggSpec{}
	var aggOrder []string
	registerAgg := func(call *AggCall) error {
		name := call.Name()
		if _, ok := aggByName[name]; ok {
			return nil
		}
		spec := &engine.AggSpec{Func: call.Func, Name: name}
		if call.Arg != nil {
			arg, err := rewriteScalar(call.Arg, pl.relName)
			if err != nil {
				return err
			}
			spec.Arg = arg
		}
		aggByName[name] = spec
		aggOrder = append(aggOrder, name)
		return nil
	}

	hasAggs := false
	type outItem struct {
		scalar expr.Scalar // over the (agg) output relation
		name   string
	}
	var outItems []outItem
	aggNames := map[string]bool{}
	for _, it := range stmt.Items {
		for _, call := range it.Aggs {
			hasAggs = true
			if err := registerAgg(call); err != nil {
				return nil, err
			}
			aggNames[call.Name()] = true
		}
	}
	grouped := hasAggs || len(stmt.GroupBy) > 0

	// Group-by expressions rewritten to relation names. Computed group
	// scalars (e.g. extract(year from ...)) are materialized by a
	// pre-aggregation projection and grouped by their canonical key.
	type groupItem struct {
		scalar expr.Scalar
		name   string
	}
	var groupItems []groupItem
	needPre := false
	for _, g := range stmt.GroupBy {
		gs, err := rewriteScalar(g, pl.relName)
		if err != nil {
			return nil, err
		}
		name := gs.Key()
		if cr, ok := gs.(*expr.ColRef); ok {
			name = cr.Name
		} else {
			needPre = true
		}
		groupItems = append(groupItems, groupItem{scalar: gs, name: name})
	}
	var groupCols []string
	groupNames := map[string]bool{}
	for _, gi := range groupItems {
		groupCols = append(groupCols, gi.name)
		groupNames[gi.name] = true
	}

	// HAVING: register hidden aggregates.
	var havingPreds []expr.Pred
	for _, h := range stmt.Having {
		if h.Agg != nil {
			if err := registerAgg(h.Agg); err != nil {
				return nil, err
			}
			havingPreds = append(havingPreds, expr.Cmp(h.Agg.Name(), h.Op, h.Val))
		} else {
			n, err := pl.relName(h.Col)
			if err != nil {
				return nil, err
			}
			havingPreds = append(havingPreds, expr.Cmp(n, h.Op, h.Val))
		}
	}

	node := input
	if grouped {
		if needPre {
			// Materialize computed group scalars plus every column the
			// aggregate arguments read.
			pre := &engine.Project{Input: node}
			added := map[string]bool{}
			for _, gi := range groupItems {
				if !added[gi.name] {
					pre.Exprs = append(pre.Exprs, engine.NamedScalar{Expr: gi.scalar, Name: gi.name})
					added[gi.name] = true
				}
			}
			for _, name := range aggOrder {
				spec := aggByName[name]
				if spec.Arg == nil {
					continue
				}
				for _, c := range spec.Arg.ScalarColumns(nil) {
					if !added[c] {
						pre.Exprs = append(pre.Exprs, engine.NamedScalar{Expr: expr.Col(c), Name: c})
						added[c] = true
					}
				}
			}
			node = pre
		}
		agg := &engine.Agg{Input: node, GroupBy: groupCols}
		for _, name := range aggOrder {
			agg.Aggs = append(agg.Aggs, *aggByName[name])
		}
		node = agg
	}
	for _, hp := range havingPreds {
		node = &engine.Filter{Input: node, Pred: hp}
	}

	// Output projection. Over a grouped relation the available columns are
	// the group columns (relation names) plus aggregate canonical names; the
	// select scalars reference them directly. Over an ungrouped relation the
	// scalars reference relation column names.
	for i, it := range stmt.Items {
		name := it.Alias
		var sc expr.Scalar
		var err error
		if grouped {
			// Aggregate references are already canonical; rewrite the
			// non-aggregate column references, then fold subtrees matching a
			// computed group expression into references to its output column.
			sc, err = rewriteScalar(it.Scalar, func(col string) (string, error) {
				if aggNames[col] || aggByName[col] != nil {
					return col, nil
				}
				return pl.relName(col)
			})
			if err == nil {
				sc = replaceGroupRefs(sc, groupNames)
			}
		} else {
			sc, err = rewriteScalar(it.Scalar, pl.relName)
		}
		if err != nil {
			return nil, err
		}
		if name == "" {
			if cr, ok := sc.(*expr.ColRef); ok {
				name = cr.Name
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		outItems = append(outItems, outItem{scalar: sc, name: name})
	}

	proj := &engine.Project{Input: node}
	for _, it := range outItems {
		proj.Exprs = append(proj.Exprs, engine.NamedScalar{Expr: it.scalar, Name: it.name})
	}
	node = proj

	// ORDER BY over the projected output.
	if len(stmt.OrderBy) > 0 {
		srt := &engine.Sort{Input: node}
		for _, oi := range stmt.OrderBy {
			var col string
			switch {
			case oi.Position > 0:
				if oi.Position > len(outItems) {
					return nil, fmt.Errorf("sql: ORDER BY position %d out of range", oi.Position)
				}
				col = outItems[oi.Position-1].name
			case oi.Agg != nil:
				// Match by canonical name against a select alias or output.
				col = oi.Agg.Name()
				found := false
				for _, it := range outItems {
					if it.name == col {
						found = true
						break
					}
					if cr, ok := it.scalar.(*expr.ColRef); ok && cr.Name == col {
						col = it.name
						found = true
						break
					}
				}
				if !found {
					return nil, fmt.Errorf("sql: ORDER BY aggregate %s not in select list", col)
				}
			default:
				// A select alias or a column name.
				col = oi.Col
				matched := false
				for _, it := range outItems {
					if it.name == col {
						matched = true
						break
					}
				}
				if !matched {
					n, err := pl.relName(oi.Col)
					if err != nil {
						return nil, fmt.Errorf("sql: ORDER BY column %q not in output", oi.Col)
					}
					for _, it := range outItems {
						if it.name == n {
							col = n
							matched = true
							break
						}
						if cr, ok := it.scalar.(*expr.ColRef); ok && cr.Name == n {
							col = it.name
							matched = true
							break
						}
					}
					if !matched {
						return nil, fmt.Errorf("sql: ORDER BY column %q not in output", oi.Col)
					}
				}
			}
			srt.Keys = append(srt.Keys, engine.SortKey{Col: col, Desc: oi.Desc})
		}
		node = srt
	}
	if stmt.Limit >= 0 {
		node = &engine.Limit{Input: node, N: stmt.Limit}
	}
	return node, nil
}

// rewriteScalar renames column references inside a scalar expression.
func rewriteScalar(s expr.Scalar, rename func(string) (string, error)) (expr.Scalar, error) {
	switch t := s.(type) {
	case *expr.ColRef:
		n, err := rename(t.Name)
		if err != nil {
			return nil, err
		}
		return expr.Col(n), nil
	case *expr.ConstScalar:
		return t, nil
	case *expr.ArithScalar:
		l, err := rewriteScalar(t.L, rename)
		if err != nil {
			return nil, err
		}
		r, err := rewriteScalar(t.R, rename)
		if err != nil {
			return nil, err
		}
		return expr.Arith(l, t.Op, r), nil
	case *expr.YearScalar:
		a, err := rewriteScalar(t.Arg, rename)
		if err != nil {
			return nil, err
		}
		return expr.Year(a), nil
	case *expr.CaseScalar:
		cond, err := rewriteToBase(t.Cond, rename)
		if err != nil {
			return nil, err
		}
		then, err := rewriteScalar(t.Then, rename)
		if err != nil {
			return nil, err
		}
		els, err := rewriteScalar(t.Else, rename)
		if err != nil {
			return nil, err
		}
		return expr.Case(cond, then, els), nil
	}
	return nil, fmt.Errorf("sql: cannot rewrite scalar %T", s)
}

// replaceGroupRefs folds any subtree whose canonical key equals a group
// expression's output column into a reference to that column.
func replaceGroupRefs(s expr.Scalar, groupNames map[string]bool) expr.Scalar {
	if groupNames[s.Key()] {
		return expr.Col(s.Key())
	}
	switch t := s.(type) {
	case *expr.ArithScalar:
		return expr.Arith(replaceGroupRefs(t.L, groupNames), t.Op, replaceGroupRefs(t.R, groupNames))
	case *expr.YearScalar:
		return expr.Year(replaceGroupRefs(t.Arg, groupNames))
	case *expr.CaseScalar:
		return expr.Case(t.Cond, replaceGroupRefs(t.Then, groupNames), replaceGroupRefs(t.Else, groupNames))
	}
	return s
}
