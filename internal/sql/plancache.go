package sql

import (
	"container/list"
	"sync"
	"time"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

// PlanCache is an LRU cache of parsed-and-planned SELECT templates keyed on
// normalized SQL (Normalize). A hit skips lexing, parsing and planning
// entirely: the cached template — a plan tree whose literal Values carry bind
// slots — is deep-cloned with the current query's literals substituted in.
//
// Invalidation is version-based rather than notification-based: each entry
// records, per referenced table, the DML version and vacuum layout epoch
// observed at plan time, plus the database-wide DDL generation. A lookup
// whose current versions differ drops the entry and replans — so plans never
// outlive a CREATE TABLE, data change, or vacuum that could have changed
// what the planner would produce (join order heuristics read table
// statistics). Plans over virtual (pc.*) tables or materialized inputs are
// never cached.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*planEntry
	lru     *list.List // front = most recent; values are *planEntry

	hits          int64
	misses        int64
	bypasses      int64
	invalidations int64
	evictions     int64
}

type planEntry struct {
	key     string
	node    engine.Node // immutable template, slot-tagged
	nslots  int
	deps    []planDep
	ddlGen  uint64
	hits    int64
	created time.Time
	lastHit time.Time
	elem    *list.Element
}

type planDep struct {
	table   string
	version uint64
	epoch   uint64
}

// DefaultPlanCacheCapacity bounds the cache when the caller does not choose.
const DefaultPlanCacheCapacity = 256

// NewPlanCache returns a plan cache holding at most capacity templates
// (<= 0 selects DefaultPlanCacheCapacity).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheCapacity
	}
	return &PlanCache{
		cap:     capacity,
		entries: make(map[string]*planEntry),
		lru:     list.New(),
	}
}

// Get returns a ready-to-execute plan for nq when a valid template is
// cached: the template cloned with nq's literals bound into its slots.
func (pc *PlanCache) Get(nq *NormalizedQuery, cat *storage.Catalog, ddlGen uint64) (engine.Node, bool) {
	if pc == nil || nq == nil {
		return nil, false
	}
	pc.mu.Lock()
	e, ok := pc.entries[nq.Key]
	if !ok {
		pc.misses++
		pc.mu.Unlock()
		return nil, false
	}
	if e.ddlGen != ddlGen || e.nslots != len(nq.Args) || !depsCurrent(e.deps, cat) {
		pc.removeLocked(e)
		pc.invalidations++
		pc.misses++
		pc.mu.Unlock()
		return nil, false
	}
	e.hits++
	e.lastHit = time.Now()
	pc.hits++
	pc.lru.MoveToFront(e.elem)
	tmpl := e.node
	pc.mu.Unlock()

	// Clone outside the lock: the template is immutable, and cloning walks
	// the whole tree.
	node, ok := engine.ClonePlan(tmpl, func(v expr.Value) expr.Value {
		if v.Slot >= 1 && v.Slot <= len(nq.Args) {
			arg := nq.Args[v.Slot-1]
			arg.Slot = v.Slot
			return arg
		}
		return v
	})
	if !ok {
		// Cannot happen for a template Put accepted; fail safe to a replan.
		return nil, false
	}
	return node, true
}

// Put caches node as the template for nq. The node must be freshly planned
// from nq's slot-tagged parse; Put verifies that the plan carries exactly
// the slots 1..len(Args) (each at least once — the planner may duplicate a
// factored predicate into several scans) and refuses to cache otherwise, so
// a literal that went structurally into the plan (constant folding, rewrite)
// can never be rebound incorrectly. The stored template is a detached clone:
// the caller's node is about to be executed, and execution mutates scans
// transiently (semi-join pushdown).
func (pc *PlanCache) Put(nq *NormalizedQuery, node engine.Node, cat *storage.Catalog, ddlGen uint64) {
	if pc == nil || nq == nil || node == nil {
		return
	}
	var slots []int
	if !engine.PlanSlots(node, &slots) {
		pc.bypass()
		return
	}
	seen := make([]bool, len(nq.Args))
	for _, s := range slots {
		if s < 1 || s > len(nq.Args) {
			pc.bypass()
			return
		}
		seen[s-1] = true
	}
	for _, s := range seen {
		if !s {
			// A slotted literal did not survive into the plan verbatim; a
			// later rebind could not reach it. Don't cache this shape.
			pc.bypass()
			return
		}
	}
	tmpl, ok := engine.ClonePlan(node, func(v expr.Value) expr.Value { return v })
	if !ok {
		pc.bypass()
		return
	}
	tables := engine.PlanTables(node)
	deps := make([]planDep, 0, len(tables))
	for _, t := range tables {
		tbl, ok := cat.Table(t)
		if !ok {
			pc.bypass()
			return
		}
		deps = append(deps, planDep{table: t, version: tbl.Version(), epoch: tbl.LayoutEpoch()})
	}

	e := &planEntry{
		key:     nq.Key,
		node:    tmpl,
		nslots:  len(nq.Args),
		deps:    deps,
		ddlGen:  ddlGen,
		created: time.Now(),
	}
	pc.mu.Lock()
	if old, ok := pc.entries[nq.Key]; ok {
		pc.removeLocked(old)
	}
	e.elem = pc.lru.PushFront(e)
	pc.entries[nq.Key] = e
	for pc.lru.Len() > pc.cap {
		back := pc.lru.Back()
		pc.removeLocked(back.Value.(*planEntry))
		pc.evictions++
	}
	pc.mu.Unlock()
}

func (pc *PlanCache) bypass() {
	pc.mu.Lock()
	pc.bypasses++
	pc.mu.Unlock()
}

func (pc *PlanCache) removeLocked(e *planEntry) {
	delete(pc.entries, e.key)
	pc.lru.Remove(e.elem)
}

func depsCurrent(deps []planDep, cat *storage.Catalog) bool {
	for _, d := range deps {
		tbl, ok := cat.Table(d.table)
		if !ok || tbl.Version() != d.version || tbl.LayoutEpoch() != d.epoch {
			return false
		}
	}
	return true
}

// PlanCacheStats is a snapshot of the cache's counters.
type PlanCacheStats struct {
	Entries       int
	Capacity      int
	Hits          int64
	Misses        int64
	Bypasses      int64
	Invalidations int64
	Evictions     int64
}

// Stats returns a counter snapshot. Safe on a nil cache.
func (pc *PlanCache) Stats() PlanCacheStats {
	if pc == nil {
		return PlanCacheStats{}
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{
		Entries:       len(pc.entries),
		Capacity:      pc.cap,
		Hits:          pc.hits,
		Misses:        pc.misses,
		Bypasses:      pc.bypasses,
		Invalidations: pc.invalidations,
		Evictions:     pc.evictions,
	}
}

// PlanCacheEntry describes one cached template for introspection
// (pc.plan_cache).
type PlanCacheEntry struct {
	Key       string
	Slots     int
	Tables    []string
	Hits      int64
	CreatedAt time.Time
	LastHitAt time.Time
}

// Entries lists the cached templates, most recently used first. Safe on a
// nil cache.
func (pc *PlanCache) Entries() []PlanCacheEntry {
	if pc == nil {
		return nil
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := make([]PlanCacheEntry, 0, pc.lru.Len())
	for el := pc.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*planEntry)
		tables := make([]string, len(e.deps))
		for i, d := range e.deps {
			tables[i] = d.table
		}
		out = append(out, PlanCacheEntry{
			Key:       e.key,
			Slots:     e.nslots,
			Tables:    tables,
			Hits:      e.hits,
			CreatedAt: e.created,
			LastHitAt: e.lastHit,
		})
	}
	return out
}
