// Package sql provides the SQL front end: a lexer, a recursive-descent
// parser, and a planner lowering the analytic SQL subset used by the
// TPC-H/SSB/TPC-DS-like workloads onto engine plan trees.
//
// Supported: SELECT with scalar and aggregate expressions, FROM with
// implicit joins (comma lists + WHERE equi-join predicates), WHERE filters
// (comparisons, BETWEEN, IN, LIKE, AND/OR/NOT, date literals and date
// arithmetic), GROUP BY, HAVING (aggregate or column comparisons), ORDER BY,
// LIMIT, and CASE WHEN expressions.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // operators and punctuation
)

type token struct {
	kind tokenKind
	text string // identifiers lower-cased; strings unquoted
	pos  int
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(input[i])) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sql: unterminated string literal")
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, token{tokString, sb.String(), i})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			toks = append(toks, token{tokIdent, strings.ToLower(input[start:i]), start})
		default:
			// Multi-char operators first.
			if i+1 < n {
				two := input[i : i+2]
				if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
					toks = append(toks, token{tokSymbol, two, i})
					i += 2
					continue
				}
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', '.', ';':
				toks = append(toks, token{tokSymbol, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
