package sql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

type parser struct {
	toks []token
	pos  int
	// aggs collects aggregate calls encountered while parsing select items.
	aggs []*AggCall
	// inAggArg guards against nested aggregates.
	inAggArg bool
	// slots maps literal-token byte positions to 1-based bind slots (from
	// Normalize); parseValue tags the Values it builds at those positions so
	// the resulting plan can serve as a plan-cache template. nil outside
	// ParseNormalized.
	slots map[int]int
}

// Parse parses one SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	return ParseNormalized(input, nil)
}

// ParseNormalized parses one SELECT statement, tagging the literal Values
// whose token positions appear in slots with their bind-slot numbers. The
// plan cache parses templates through this so Normalize's slot assignment
// survives into the plan tree (planner rewrites copy Values by value).
func ParseNormalized(input string, slots map[int]int) (*SelectStmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, slots: slots}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	return stmt, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) peekText() string {
	t := p.peek()
	if t.kind == tokIdent || t.kind == tokSymbol {
		return t.text
	}
	return ""
}

// accept consumes the next token if it matches text (keyword or symbol).
func (p *parser) accept(text string) bool {
	if p.peekText() == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return fmt.Errorf("sql: expected %q, got %q", text, p.peek().text)
	}
	return nil
}

var aggFuncs = map[string]engine.AggFunc{
	"count": engine.AggCount,
	"sum":   engine.AggSum,
	"avg":   engine.AggAvg,
	"min":   engine.AggMin,
	"max":   engine.AggMax,
}

// reserved words that terminate expressions / cannot start a column ref.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "limit": true, "and": true, "or": true,
	"not": true, "between": true, "in": true, "like": true, "as": true,
	"asc": true, "desc": true, "case": true, "when": true, "then": true,
	"else": true, "end": true, "on": true, "join": true, "inner": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expect("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect("from"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.accept(",") {
			break
		}
	}
	if p.accept("where") {
		pred, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		stmt.Where = pred
	}
	if p.accept("group") {
		if err := p.expect("by"); err != nil {
			return nil, err
		}
		for {
			p.aggs = nil
			sc, err := p.parseScalar()
			if err != nil {
				return nil, err
			}
			if len(p.aggs) > 0 {
				return nil, fmt.Errorf("sql: aggregates not allowed in GROUP BY")
			}
			stmt.GroupBy = append(stmt.GroupBy, sc)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("having") {
		for {
			cond, err := p.parseHavingCond()
			if err != nil {
				return nil, err
			}
			stmt.Having = append(stmt.Having, cond)
			if !p.accept("and") {
				break
			}
		}
	}
	if p.accept("order") {
		if err := p.expect("by"); err != nil {
			return nil, err
		}
		for {
			item, err := p.parseOrderItem()
			if err != nil {
				return nil, err
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("limit") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: LIMIT needs a number, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, err
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.next()
	if t.kind != tokIdent || reserved[t.text] {
		return TableRef{}, fmt.Errorf("sql: expected table name, got %q", t.text)
	}
	name := t.text
	// Schema-qualified name (the reserved `pc` system schema): keep the
	// qualified form as the table name.
	if p.accept(".") {
		t2 := p.next()
		if t2.kind != tokIdent || reserved[t2.text] {
			return TableRef{}, fmt.Errorf("sql: expected table after %q.", name)
		}
		name = name + "." + t2.text
	}
	ref := TableRef{Table: name}
	p.accept("as")
	if nt := p.peek(); nt.kind == tokIdent && !reserved[nt.text] {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.peekText() == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	p.aggs = nil
	sc, err := p.parseScalar()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Scalar: sc, Aggs: p.aggs}
	p.aggs = nil
	if p.accept("as") {
		t := p.next()
		if t.kind != tokIdent {
			return SelectItem{}, fmt.Errorf("sql: expected alias, got %q", t.text)
		}
		item.Alias = t.text
	} else if nt := p.peek(); nt.kind == tokIdent && !reserved[nt.text] {
		item.Alias = p.next().text
	}
	return item, nil
}

// parseColName parses ident or ident.ident as written.
func (p *parser) parseColName() (string, error) {
	t := p.next()
	if t.kind != tokIdent || reserved[t.text] {
		return "", fmt.Errorf("sql: expected column name, got %q", t.text)
	}
	name := t.text
	if p.accept(".") {
		t2 := p.next()
		if t2.kind != tokIdent {
			return "", fmt.Errorf("sql: expected column after %q.", name)
		}
		name = name + "." + t2.text
	}
	return name, nil
}

// --- scalar expressions ---

func (p *parser) parseScalar() (expr.Scalar, error) {
	return p.parseAdditive()
}

func (p *parser) parseAdditive() (expr.Scalar, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peekText() {
		case "+":
			p.next()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = expr.Arith(l, expr.Add, r)
		case "-":
			p.next()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = expr.Arith(l, expr.Sub, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (expr.Scalar, error) {
	l, err := p.parseUnaryScalar()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peekText() {
		case "*":
			p.next()
			r, err := p.parseUnaryScalar()
			if err != nil {
				return nil, err
			}
			l = expr.Arith(l, expr.Mul, r)
		case "/":
			p.next()
			r, err := p.parseUnaryScalar()
			if err != nil {
				return nil, err
			}
			l = expr.Arith(l, expr.Div, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnaryScalar() (expr.Scalar, error) {
	if p.accept("-") {
		s, err := p.parsePrimaryScalar()
		if err != nil {
			return nil, err
		}
		return expr.Arith(expr.Const(expr.Int(0)), expr.Sub, s), nil
	}
	return p.parsePrimaryScalar()
}

func (p *parser) parsePrimaryScalar() (expr.Scalar, error) {
	t := p.peek()
	switch {
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		s, err := p.parseScalar()
		if err != nil {
			return nil, err
		}
		return s, p.expect(")")
	case t.kind == tokNumber:
		p.next()
		return expr.Const(numberValue(t.text)), nil
	case t.kind == tokIdent && t.text == "case":
		return p.parseCase()
	case t.kind == tokIdent && t.text == "date" && p.toks[p.pos+1].kind == tokString:
		v, err := p.parseDateValue()
		if err != nil {
			return nil, err
		}
		return expr.Const(v), nil
	case t.kind == tokIdent && t.text == "extract":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if err := p.expect("year"); err != nil {
			return nil, err
		}
		if err := p.expect("from"); err != nil {
			return nil, err
		}
		arg, err := p.parseScalar()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return expr.Year(arg), nil
	case t.kind == tokIdent && isAggName(t.text) && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(":
		return p.parseAggCall()
	case t.kind == tokIdent && !reserved[t.text]:
		col, err := p.parseColName()
		if err != nil {
			return nil, err
		}
		return expr.Col(col), nil
	}
	return nil, fmt.Errorf("sql: unexpected token %q in expression", t.text)
}

func (p *parser) parseCase() (expr.Scalar, error) {
	if err := p.expect("case"); err != nil {
		return nil, err
	}
	if err := p.expect("when"); err != nil {
		return nil, err
	}
	cond, err := p.parsePred()
	if err != nil {
		return nil, err
	}
	if err := p.expect("then"); err != nil {
		return nil, err
	}
	then, err := p.parseScalar()
	if err != nil {
		return nil, err
	}
	els := expr.Scalar(expr.Const(expr.Int(0)))
	if p.accept("else") {
		els, err = p.parseScalar()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect("end"); err != nil {
		return nil, err
	}
	return expr.Case(cond, then, els), nil
}

// parseAggCall parses an aggregate and returns a column reference to its
// canonical name, registering the call in p.aggs.
func (p *parser) parseAggCall() (expr.Scalar, error) {
	if p.inAggArg {
		return nil, fmt.Errorf("sql: nested aggregates unsupported")
	}
	fn := p.next().text
	if err := p.expect("("); err != nil {
		return nil, err
	}
	call := &AggCall{Func: aggFuncs[fn]}
	if fn == "count" && p.accept("*") {
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	} else {
		if fn == "count" && p.accept("distinct") {
			call.Distinct = true
			call.Func = engine.AggCountDistinct
		}
		p.inAggArg = true
		arg, err := p.parseScalar()
		p.inAggArg = false
		if err != nil {
			return nil, err
		}
		call.Arg = arg
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	p.aggs = append(p.aggs, call)
	return expr.Col(call.Name()), nil
}

// --- values ---

func numberValue(text string) expr.Value {
	if strings.Contains(text, ".") {
		f, _ := strconv.ParseFloat(text, 64)
		return expr.Float(f)
	}
	i, _ := strconv.ParseInt(text, 10, 64)
	return expr.Int(i)
}

// parseDateValue parses date 'Y-M-D' with optional +/- interval arithmetic.
func (p *parser) parseDateValue() (expr.Value, error) {
	if err := p.expect("date"); err != nil {
		return expr.Value{}, err
	}
	t := p.next()
	if t.kind != tokString {
		return expr.Value{}, fmt.Errorf("sql: date needs a string literal")
	}
	days, err := storage.ParseDate(t.text)
	if err != nil {
		return expr.Value{}, err
	}
	for {
		sign := int64(0)
		if p.peekText() == "+" {
			sign = 1
		} else if p.peekText() == "-" {
			sign = -1
		}
		if sign == 0 || p.toks[p.pos+1].text != "interval" {
			break
		}
		p.next() // sign
		p.next() // interval
		t := p.next()
		if t.kind != tokString {
			return expr.Value{}, fmt.Errorf("sql: interval needs a string literal")
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return expr.Value{}, fmt.Errorf("sql: bad interval %q", t.text)
		}
		unit := p.next()
		switch unit.text {
		case "day", "days":
			days += sign * n
		case "month", "months":
			days = addMonths(days, sign*n)
		case "year", "years":
			days = addMonths(days, sign*n*12)
		default:
			return expr.Value{}, fmt.Errorf("sql: unknown interval unit %q", unit.text)
		}
	}
	return expr.Int(days), nil
}

func addMonths(days, months int64) int64 {
	y, m, d := storage.YMDFromDate(days)
	total := int64(y)*12 + int64(m-1) + months
	ny := int(total / 12)
	nm := int(total%12) + 1
	// Clamp the day to the target month's length.
	for d > 28 {
		candidate := storage.DateFromYMD(ny, nm, d)
		cy, cm, _ := storage.YMDFromDate(candidate)
		if cy == ny && cm == nm {
			break
		}
		d--
	}
	return storage.DateFromYMD(ny, nm, d)
}

// parseValue parses a literal: number, string, or date expression. Literals
// at slot-tagged positions (ParseNormalized) carry their bind-slot number.
func (p *parser) parseValue() (expr.Value, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		v := numberValue(t.text)
		v.Slot = p.slots[t.pos]
		return v, nil
	case t.kind == tokString:
		p.next()
		v := expr.Str(t.text)
		v.Slot = p.slots[t.pos]
		return v, nil
	case t.kind == tokIdent && t.text == "date":
		return p.parseDateValue()
	case t.kind == tokSymbol && t.text == "-":
		p.next()
		v, err := p.parseValue()
		if err != nil {
			return expr.Value{}, err
		}
		if v.Kind == expr.KindFloat {
			v.F = -v.F
		} else {
			v.I = -v.I
		}
		// A negated literal is not the literal the normalizer saw: the value
		// differs by sign, so substituting a later query's literal verbatim
		// would be wrong. Normalize never tags these; drop the tag in case.
		v.Slot = 0
		return v, nil
	}
	return expr.Value{}, fmt.Errorf("sql: expected literal, got %q", t.text)
}

// --- predicates ---

func (p *parser) parsePred() (expr.Pred, error) {
	return p.parseOrPred()
}

func (p *parser) parseOrPred() (expr.Pred, error) {
	l, err := p.parseAndPred()
	if err != nil {
		return nil, err
	}
	for p.accept("or") {
		r, err := p.parseAndPred()
		if err != nil {
			return nil, err
		}
		l = expr.Or(l, r)
	}
	return l, nil
}

func (p *parser) parseAndPred() (expr.Pred, error) {
	l, err := p.parseNotPred()
	if err != nil {
		return nil, err
	}
	for p.accept("and") {
		r, err := p.parseNotPred()
		if err != nil {
			return nil, err
		}
		l = expr.And(l, r)
	}
	return l, nil
}

func (p *parser) parseNotPred() (expr.Pred, error) {
	if p.accept("not") {
		c, err := p.parseNotPred()
		if err != nil {
			return nil, err
		}
		return expr.Not(c), nil
	}
	return p.parsePrimaryPred()
}

func isAggName(text string) bool {
	_, ok := aggFuncs[text]
	return ok
}

var cmpOps = map[string]expr.CmpOp{
	"=": expr.Eq, "<>": expr.Ne, "!=": expr.Ne,
	"<": expr.Lt, "<=": expr.Le, ">": expr.Gt, ">=": expr.Ge,
}

func flipOp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.Lt:
		return expr.Gt
	case expr.Le:
		return expr.Ge
	case expr.Gt:
		return expr.Lt
	case expr.Ge:
		return expr.Le
	}
	return op
}

func (p *parser) parsePrimaryPred() (expr.Pred, error) {
	if p.peekText() == "(" {
		p.next()
		pred, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		return pred, p.expect(")")
	}

	// Literal-first comparison: lit op col.
	t := p.peek()
	if t.kind == tokNumber || t.kind == tokString || (t.kind == tokIdent && t.text == "date" && p.toks[p.pos+1].kind == tokString) {
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		op, ok := cmpOps[p.peekText()]
		if !ok {
			return nil, fmt.Errorf("sql: expected comparison after literal, got %q", p.peek().text)
		}
		p.next()
		col, err := p.parseColName()
		if err != nil {
			return nil, err
		}
		return expr.Cmp(col, flipOp(op), v), nil
	}

	col, err := p.parseColName()
	if err != nil {
		return nil, err
	}
	negate := p.accept("not")
	switch {
	case p.accept("between"):
		lo, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		if err := p.expect("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		var pred expr.Pred = expr.Between(col, lo, hi)
		if negate {
			pred = expr.Not(pred)
		}
		return pred, nil
	case p.accept("in"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var vals []expr.Value
		for {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		var pred expr.Pred = expr.In(col, vals...)
		if negate {
			pred = expr.Not(pred)
		}
		return pred, nil
	case p.accept("like"):
		t := p.next()
		if t.kind != tokString {
			return nil, fmt.Errorf("sql: LIKE needs a string pattern")
		}
		if negate {
			return expr.NotLike(col, t.text), nil
		}
		return expr.Like(col, t.text), nil
	}
	if negate {
		return nil, fmt.Errorf("sql: expected BETWEEN/IN/LIKE after NOT")
	}
	op, ok := cmpOps[p.peekText()]
	if !ok {
		return nil, fmt.Errorf("sql: expected comparison for column %s, got %q", col, p.peek().text)
	}
	p.next()
	// Right side: literal or another column.
	t = p.peek()
	if t.kind == tokIdent && !reserved[t.text] && t.text != "date" {
		rcol, err := p.parseColName()
		if err != nil {
			return nil, err
		}
		return expr.CmpCols(col, op, rcol), nil
	}
	if t.kind == tokIdent && t.text == "date" && p.toks[p.pos+1].kind != tokString {
		rcol, err := p.parseColName()
		if err != nil {
			return nil, err
		}
		return expr.CmpCols(col, op, rcol), nil
	}
	v, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	return expr.Cmp(col, op, v), nil
}

// --- having / order by ---

func (p *parser) parseHavingCond() (HavingCond, error) {
	var cond HavingCond
	t := p.peek()
	if t.kind == tokIdent && isAggName(t.text) &&
		p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
		p.aggs = nil
		if _, err := p.parseAggCall(); err != nil {
			return cond, err
		}
		cond.Agg = p.aggs[len(p.aggs)-1]
		p.aggs = nil
	} else {
		col, err := p.parseColName()
		if err != nil {
			return cond, err
		}
		cond.Col = col
	}
	op, ok := cmpOps[p.peekText()]
	if !ok {
		return cond, fmt.Errorf("sql: expected comparison in HAVING, got %q", p.peek().text)
	}
	p.next()
	v, err := p.parseValue()
	if err != nil {
		return cond, err
	}
	cond.Op = op
	cond.Val = v
	return cond, nil
}

func (p *parser) parseOrderItem() (OrderItem, error) {
	var item OrderItem
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return item, fmt.Errorf("sql: bad ORDER BY position %q", t.text)
		}
		item.Position = n
	case t.kind == tokIdent && isAggName(t.text) &&
		p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(":
		p.aggs = nil
		if _, err := p.parseAggCall(); err != nil {
			return item, err
		}
		item.Agg = p.aggs[len(p.aggs)-1]
		p.aggs = nil
	default:
		col, err := p.parseColName()
		if err != nil {
			return item, err
		}
		item.Col = col
	}
	if p.accept("desc") {
		item.Desc = true
	} else {
		p.accept("asc")
	}
	return item, nil
}

// ParsePredicate parses a standalone predicate expression (the text after
// WHERE), for APIs that take filter conditions outside a full statement.
func ParsePredicate(cond string) (expr.Pred, error) {
	toks, err := lex(cond)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pred, err := p.parsePred()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input in predicate at %q", p.peek().text)
	}
	return pred, nil
}
