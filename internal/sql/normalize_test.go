package sql

import (
	"testing"

	"github.com/predcache/predcache/internal/expr"
)

func mustNormalize(t *testing.T, q string) *NormalizedQuery {
	t.Helper()
	nq, ok := Normalize(q)
	if !ok {
		t.Fatalf("Normalize(%q) not ok", q)
	}
	return nq
}

func TestNormalizeStripsComparisonLiterals(t *testing.T) {
	a := mustNormalize(t, "select count(*) from t where id > 42 and grp = 'a'")
	b := mustNormalize(t, "select count(*) from t where id > 99 and grp = 'b'")
	if a.Key != b.Key {
		t.Fatalf("keys differ:\n%s\n%s", a.Key, b.Key)
	}
	if len(a.Args) != 2 || len(b.Args) != 2 {
		t.Fatalf("args: %v / %v", a.Args, b.Args)
	}
	if a.Args[0].I != 42 || b.Args[0].I != 99 {
		t.Fatalf("first arg: %v / %v", a.Args[0], b.Args[0])
	}
	if a.Args[1].S != "a" || b.Args[1].S != "b" {
		t.Fatalf("second arg: %v / %v", a.Args[1], b.Args[1])
	}
}

func TestNormalizeBetweenAndInList(t *testing.T) {
	a := mustNormalize(t, "select sum(val) from t where id between 10 and 20 and grp in ('a', 'b', 'c')")
	b := mustNormalize(t, "select sum(val) from t where id between 30 and 77 and grp in ('x', 'y', 'z')")
	if a.Key != b.Key {
		t.Fatalf("keys differ:\n%s\n%s", a.Key, b.Key)
	}
	if len(a.Args) != 5 {
		t.Fatalf("want 5 args, got %v", a.Args)
	}
}

// Literals whose value shapes the plan must stay verbatim in the template.
func TestNormalizeKeepsStructuralLiterals(t *testing.T) {
	for _, tc := range []struct {
		a, b string
	}{
		{"select id from t order by id limit 5", "select id from t order by id limit 50"},
		{"select id from t where grp like 'a%'", "select id from t where grp like 'b%'"},
		{"select id from t where id > -5", "select id from t where id > -6"},
		{"select id + 1 from t", "select id + 2 from t"},
		{"select id from t where 5 < id", "select id from t where 6 < id"},
	} {
		na := mustNormalize(t, tc.a)
		nb := mustNormalize(t, tc.b)
		if na.Key == nb.Key {
			t.Errorf("structurally distinct queries share a key:\n%s\n%s", tc.a, tc.b)
		}
	}
}

func TestNormalizeRejectsNonSelect(t *testing.T) {
	if _, ok := Normalize("explain select 1 from t"); ok {
		t.Error("EXPLAIN should not normalize")
	}
	if _, ok := Normalize("where broken ((("); ok {
		t.Error("non-SELECT should not normalize")
	}
}

// ParseNormalized must tag exactly the stripped literals with their slots,
// and Parse (no slot map) must leave every Value untagged.
func TestParseNormalizedTagsSlots(t *testing.T) {
	q := "select count(*) from t where id > 42 and grp in ('a', 'b')"
	nq := mustNormalize(t, q)
	if len(nq.Args) != 3 {
		t.Fatalf("args: %v", nq.Args)
	}
	stmt, err := ParseNormalized(q, nq.Slots())
	if err != nil {
		t.Fatal(err)
	}
	var slots []int
	if !expr.WalkPredValues(stmt.Where, func(v expr.Value) {
		if v.Slot != 0 {
			slots = append(slots, v.Slot)
		}
	}) {
		t.Fatal("walk failed")
	}
	if len(slots) != 3 {
		t.Fatalf("tagged slots: %v", slots)
	}
	plain, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	expr.WalkPredValues(plain.Where, func(v expr.Value) {
		if v.Slot != 0 {
			t.Errorf("Parse tagged a slot: %+v", v)
		}
	})
}

func TestPlanCacheStatsNilSafe(t *testing.T) {
	var pc *PlanCache
	if s := pc.Stats(); s.Entries != 0 {
		t.Fatal("nil cache stats")
	}
	if e := pc.Entries(); e != nil {
		t.Fatal("nil cache entries")
	}
	if _, ok := pc.Get(nil, nil, 0); ok {
		t.Fatal("nil cache hit")
	}
	pc.Put(nil, nil, nil, 0) // must not panic
}
