package sql_test

import (
	"testing"

	"github.com/predcache/predcache/internal/sql"
)

// FuzzParse asserts the parser never panics on arbitrary input; run the
// corpus as part of the normal test suite and expand it with
// `go test -fuzz FuzzParse ./internal/sql`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"select",
		"select a from t",
		"select count(*) from t where a = 1 and b between 2 and 3",
		"select a, sum(b) as s from t where c in ('x', 'y') group by a having s > 5 order by s desc limit 3",
		"select sum(case when a = 1 then b else 0 end) / sum(b) from t",
		"select extract(year from d) from t group by extract(year from d)",
		"select * from t where d >= date '1995-01-01' + interval '3' month",
		"select a from t where s like '%x_%' or not s like 'y%'",
		"select a.b, c.d from t1 a, t2 c where a.k = c.k",
		"select 'unterminated",
		"select a from t where a <=> 3",
		"select (((((((((( from t",
		"select a fromt",
		"\x00\xff\xfe",
		"select -1.5e10 from t",
		"select a from t where a in (1,2,3,)",
		"select a -- comment\nfrom t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Must not panic; errors are fine.
		stmt, err := sql.Parse(input)
		if err == nil && stmt == nil {
			t.Fatal("nil statement without error")
		}
		_, _ = sql.ParsePredicate(input)
	})
}
