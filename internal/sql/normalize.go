package sql

import (
	"strings"

	"github.com/predcache/predcache/internal/expr"
)

// NormalizedQuery is the outcome of stripping a query's bindable literals
// into slots: Key is the normalized template ("... where x = ?"), Args holds
// the literal values in slot order (slot i ↔ Args[i-1]), and slots maps the
// byte position of each stripped literal token back to its 1-based slot so
// the parser can tag the expr.Values it builds from them (ParseNormalized).
//
// Two queries that differ only in bindable literals share the same Key —
// the plan-cache lookup unit exploiting the paper's §2 finding that fleet
// queries are overwhelmingly near-verbatim repeats.
type NormalizedQuery struct {
	Key   string
	Args  []expr.Value
	slots map[int]int
}

// Slots exposes the literal-position → slot mapping (for ParseNormalized).
func (nq *NormalizedQuery) Slots() map[int]int {
	if nq == nil {
		return nil
	}
	return nq.slots
}

// Normalize lexes a SELECT statement and strips bindable literals into
// slots. ok is false when the input does not lex or is not a SELECT; such
// statements are not plan-cacheable.
//
// A literal (number or string) is bindable only in positions where the
// parser's plan shape provably does not depend on its value:
//
//   - the right-hand side of a comparison operator (x = 5, having sum(q) > 3)
//   - BETWEEN bounds (x between 5 and 10)
//   - IN-list elements (x in (1, 2, 3))
//
// Everything else stays verbatim in the template: date/interval literals
// (folded at parse time), LIKE patterns (compiled into the predicate),
// LIMIT counts and ORDER BY positions (plan structure), literal-first
// comparisons, negated literals (the '-' sign is part of the value), and
// scalar-context constants (select lists, arithmetic). Queries whose
// literals all sit in non-bindable spots still normalize — with zero slots —
// so exact repeats of them hit the cache too.
func Normalize(input string) (*NormalizedQuery, bool) {
	toks, err := lex(input)
	if err != nil {
		return nil, false
	}
	if len(toks) == 0 || toks[0].kind != tokIdent || toks[0].text != "select" {
		return nil, false
	}

	nq := &NormalizedQuery{slots: make(map[int]int)}
	var sb strings.Builder
	sb.Grow(len(input))

	// Paren stack: each open paren records whether it opened an IN list, so
	// commas inside it mark further bindable elements (and commas anywhere
	// else — select lists, GROUP BY, ORDER BY — do not).
	var inList []bool

	for i, t := range toks {
		if t.kind == tokEOF {
			break
		}
		switch {
		case t.kind == tokSymbol && t.text == "(":
			opensIn := i > 0 && toks[i-1].kind == tokIdent && toks[i-1].text == "in"
			inList = append(inList, opensIn)
		case t.kind == tokSymbol && t.text == ")":
			if len(inList) > 0 {
				inList = inList[:len(inList)-1]
			}
		}

		if (t.kind == tokNumber || t.kind == tokString) && bindable(toks, i, inList) {
			slot := len(nq.Args) + 1
			nq.slots[t.pos] = slot
			if t.kind == tokNumber {
				nq.Args = append(nq.Args, numberValue(t.text))
			} else {
				nq.Args = append(nq.Args, expr.Str(t.text))
			}
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteByte('?')
			continue
		}

		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		switch t.kind {
		case tokString:
			sb.WriteByte('\'')
			sb.WriteString(strings.ReplaceAll(t.text, "'", "''"))
			sb.WriteByte('\'')
		default:
			sb.WriteString(t.text)
		}
	}
	nq.Key = sb.String()
	return nq, true
}

// bindable reports whether the literal at toks[i] sits in a bind-slot
// position (see Normalize's doc comment for the rules).
func bindable(toks []token, i int, inList []bool) bool {
	if i == 0 {
		return false
	}
	prev := toks[i-1]
	switch prev.kind {
	case tokSymbol:
		switch prev.text {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			return true
		case "(":
			// First element of an IN list (the paren was just pushed).
			return len(inList) > 0 && inList[len(inList)-1]
		case ",":
			// Subsequent IN-list elements only.
			return len(inList) > 0 && inList[len(inList)-1]
		}
	case tokIdent:
		switch prev.text {
		case "between":
			return true
		case "and":
			// The upper BETWEEN bound: "col between lo and hi" puts
			// "between" exactly three tokens back when lo is a single
			// literal. Date-typed bounds span more tokens and stay verbatim.
			return i >= 3 && toks[i-3].kind == tokIdent && toks[i-3].text == "between"
		}
	}
	return false
}
