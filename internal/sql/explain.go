package sql

import "strings"

// StripExplain recognizes an EXPLAIN [ANALYZE] prefix on a query and returns
// the remaining statement text. The keywords are matched case-insensitively
// as whole words, so predicates containing the letters are unaffected.
func StripExplain(query string) (explain, analyze bool, rest string) {
	rest = strings.TrimSpace(query)
	word, tail := nextWord(rest)
	if !strings.EqualFold(word, "explain") {
		return false, false, rest
	}
	explain = true
	rest = tail
	word, tail = nextWord(rest)
	if strings.EqualFold(word, "analyze") {
		analyze = true
		rest = tail
	}
	return explain, analyze, rest
}

// nextWord splits off the leading identifier-like word.
func nextWord(s string) (word, rest string) {
	i := 0
	for i < len(s) {
		c := s[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' {
			i++
			continue
		}
		break
	}
	return s[:i], strings.TrimSpace(s[i:])
}
