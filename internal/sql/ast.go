package sql

import (
	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/expr"
)

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Where   expr.Pred     // nil if absent
	GroupBy []expr.Scalar // grouping expressions (columns or computed scalars)
	Having  []HavingCond
	OrderBy []OrderItem
	Limit   int // -1 if absent
}

// SelectItem is one output expression. Scalar is the expression to emit;
// aggregate calls inside it were replaced by column references to their
// canonical names, and the calls themselves collected into Aggs (empty for
// pure scalar items).
type SelectItem struct {
	Scalar expr.Scalar
	Aggs   []*AggCall
	Alias  string
	// Star marks a bare `*` item (all columns; only valid alone and
	// ungrouped).
	Star bool
}

// AggCall is an aggregate function application.
type AggCall struct {
	Func     engine.AggFunc
	Arg      expr.Scalar // nil for count(*)
	Distinct bool
}

// Name returns the canonical output column name for the call.
func (a *AggCall) Name() string {
	if a.Arg == nil {
		return "count(*)"
	}
	prefix := a.Func.String()
	return prefix + "(" + a.Arg.Key() + ")"
}

// TableRef is one FROM entry.
type TableRef struct {
	Table string
	Alias string // empty when unaliased
}

// HavingCond restricts aggregate output: LHS is either an aggregate call or
// a grouping column, compared to a literal.
type HavingCond struct {
	Agg *AggCall
	Col string
	Op  expr.CmpOp
	Val expr.Value
}

// OrderItem orders output by a column name / select alias, an aggregate
// call, or a 1-based select position.
type OrderItem struct {
	Col      string
	Agg      *AggCall
	Position int // 0 if unused
	Desc     bool
}
