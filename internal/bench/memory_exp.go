package bench

import (
	"fmt"
	"math"
	"time"

	"github.com/predcache/predcache/internal/automv"
	"github.com/predcache/predcache/internal/btree"
	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/psort"
	"github.com/predcache/predcache/internal/resultcache"
	"github.com/predcache/predcache/internal/sql"
	"github.com/predcache/predcache/internal/storage"
	"github.com/predcache/predcache/internal/tpch"
)

// q6SQL renders the Q6 statement used by Tables 1 and 3.
func q6SQL() string {
	return tpch.Queries(tpch.DefaultParams())[5].SQL
}

// Table3 measures the memory consumption of data-driven indexes and
// workload-driven caches for TPC-H Q6 (§5.2).
func (r *Runner) Table3() error {
	cat, err := r.loadTpch(false)
	if err != nil {
		return err
	}
	lineitem, _ := cat.Table("lineitem")
	nRows := lineitem.NumRows()
	q6 := q6SQL()

	r.printf("== Table 3: memory consumption of indexes and caches for TPC-H Q6 ==\n")
	r.printf("(lineitem: %d rows at SF %.3f; paper ran 18B rows — compare per-row ratios)\n", nRows, r.Cfg.TpchSF)
	r.printf("%-12s %-26s %14s %14s\n", "category", "type", "size", "bytes/row")
	emit := func(cat, typ string, bytes int) {
		r.printf("%-12s %-26s %14s %14.4f\n", cat, typ, formatBytes(bytes), float64(bytes)/float64(nRows))
	}

	// Secondary B+-tree indexes over the three Q6 columns.
	cols := []string{"l_shipdate", "l_discount", "l_quantity"}
	btreeBytes := 0
	iScratch := make([]int64, storage.BlockSize)
	fScratch := make([]float64, storage.BlockSize)
	for _, col := range cols {
		tree := btree.New()
		ci := lineitem.ColumnIndex(col)
		isFloat := lineitem.ColumnType(ci) == storage.Float64
		unlock := lineitem.RLockScan()
		for si := 0; si < lineitem.NumSlices(); si++ {
			s := lineitem.Slice(si)
			c := s.Column(ci)
			for blk := 0; blk*storage.BlockSize < s.NumRows(); blk++ {
				var n int
				if isFloat {
					n = c.ReadFloatBlock(blk, fScratch)
				} else {
					n = c.ReadIntBlock(blk, iScratch)
				}
				for i := 0; i < n; i++ {
					key := iScratch[i]
					if isFloat {
						key = int64(math.Round(fScratch[i] * 100))
					}
					tree.Insert(key, btree.RowID{Slice: int32(si), Row: int32(blk*storage.BlockSize + i)})
				}
			}
		}
		unlock()
		btreeBytes += tree.MemBytes()
	}
	emit("sec. index", "B-tree (3 columns)", btreeBytes)

	// Zone maps over the same columns.
	zm := 0
	unlock := lineitem.RLockScan()
	for _, col := range cols {
		ci := lineitem.ColumnIndex(col)
		for si := 0; si < lineitem.NumSlices(); si++ {
			zm += lineitem.Slice(si).Column(ci).ZoneMapBytes()
		}
	}
	unlock()
	emit("sec. index", "zone map (3 columns)", zm)

	// Result cache: Q6 yields a single aggregate row.
	plan, err := sql.PlanSQL(q6, cat)
	if err != nil {
		return err
	}
	rel, err := plan.Execute(&engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}, Parallel: true})
	if err != nil {
		return err
	}
	rc := resultcache.New(0)
	rc.Put(q6, rel, []*storage.Table{lineitem})
	emit("cache", "result cache", rc.EntryMemBytes(q6))

	// AutoMV with predicate elevation over the three filter columns.
	mgr := automv.NewManager(cat, 1)
	stmt, err := sql.Parse(q6)
	if err != nil {
		return err
	}
	view, err := mgr.Observe(stmt)
	if err != nil {
		return err
	}
	if view == nil {
		return fmt.Errorf("table3: AutoMV did not materialize Q6")
	}
	emit("cache", "AutoMV", view.MemBytes())

	// Predicate cache, both representations.
	for _, kind := range []core.EntryKind{core.RangeIndex, core.BitmapIndex} {
		cache := pcCache(kind)
		ec := &engine.ExecCtx{Catalog: cat, Cache: cache, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}, Parallel: true}
		if _, err := plan.Execute(ec); err != nil {
			return err
		}
		emit("cache", "predicate cache ("+kind.String()+")", cache.Stats().MemBytes)
	}

	// Predicate sorting: no extra memory, but a full table rewrite.
	emit("cache", "predicate sorting", 0)
	r.printf("%-12s %-26s rewrite cost: %d rows read + written (table is %s)\n\n",
		"", "", nRows, formatBytes(lineitem.MemBytes()))
	return nil
}

// Table1 measures the four criteria — build overhead, maintenance overhead,
// gain, hit rate — for the four techniques on a repetitive parameterized
// stream with interleaved ingestion (§1/§3).
func (r *Runner) Table1() error {
	r.printf("== Table 1: caching techniques compared (measured) ==\n")
	type row struct {
		name        string
		build       time.Duration
		maintenance time.Duration
		gain        float64
		hitRate     float64
	}
	var rows []row

	mkCat := func() (*storage.Catalog, *storage.Table, error) {
		cat := storage.NewCatalog()
		if err := r.tpchData(true).Load(cat, r.Cfg.Slices); err != nil {
			return nil, nil, err
		}
		t, _ := cat.Table("lineitem")
		return cat, t, nil
	}

	// The repetitive stream: Q6 templates over two parameter sets, 80%
	// repeats, with an ingest batch every 10 queries.
	mkStream := func() []string {
		var qs []string
		params := []string{
			"select sum(l_extendedprice * l_discount) as revenue from lineitem where l_shipdate >= date '1996-01-01' and l_shipdate < date '1997-01-01' and l_discount between 0.05 and 0.07 and l_quantity < 24",
			"select sum(l_extendedprice * l_discount) as revenue from lineitem where l_shipdate >= date '1995-01-01' and l_shipdate < date '1996-01-01' and l_discount between 0.02 and 0.04 and l_quantity < 10",
			"select sum(l_extendedprice * l_discount) as revenue from lineitem where l_shipdate >= date '1997-01-01' and l_shipdate < date '1998-01-01' and l_discount between 0.08 and 0.10 and l_quantity < 44",
		}
		for i := 0; i < 60; i++ {
			qs = append(qs, params[i%len(params)])
		}
		return qs
	}
	ingest := func(cat *storage.Catalog, t *storage.Table, seed int64) error {
		extra := tpch.Generate(tpch.Config{SF: 0.0005, Skewed: true, Seed: seed})
		return t.Append(extra.Batches["lineitem"], cat.NextXID())
	}
	coldRun := func(cat *storage.Catalog, q string) (time.Duration, error) {
		plan, err := sql.PlanSQL(q, cat)
		if err != nil {
			return 0, err
		}
		best := time.Duration(0)
		for i := 0; i < 5; i++ {
			start := time.Now()
			if _, err := plan.Execute(&engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}, Parallel: true}); err != nil {
				return 0, err
			}
			if d := time.Since(start); i == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	// --- result cache ---
	{
		cat, t, err := mkCat()
		if err != nil {
			return err
		}
		rc := resultcache.New(0)
		stream := mkStream()
		var buildT time.Duration // storing the result: measured around Put
		hits := 0
		for i, q := range stream {
			if i > 0 && i%10 == 0 {
				if err := ingest(cat, t, int64(i)); err != nil {
					return err
				}
				// Invalidation is implicit and free: entries are dropped
				// lazily on the next Get.
			}
			if _, ok := rc.Get(q); ok {
				hits++
				continue
			}
			plan, err := sql.PlanSQL(q, cat)
			if err != nil {
				return err
			}
			rel, err := plan.Execute(&engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}, Parallel: true})
			if err != nil {
				return err
			}
			start := time.Now()
			rc.Put(q, rel, []*storage.Table{t})
			buildT += time.Since(start)
		}
		// Gain: measure a cold execution of the final state vs a cache hit.
		coldT, err := coldRun(cat, stream[0])
		if err != nil {
			return err
		}
		plan, _ := sql.PlanSQL(stream[0], cat)
		rel, _ := plan.Execute(&engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}, Parallel: true})
		rc.Put(stream[0], rel, []*storage.Table{t})
		start := time.Now()
		rc.Get(stream[0])
		hitT := time.Since(start)
		gain := float64(coldT) / float64(hitT+1)
		rows = append(rows, row{"result cache", buildT / time.Duration(len(stream)), 0, gain, float64(hits) / float64(len(stream))})
	}

	// --- AutoMV ---
	{
		cat, t, err := mkCat()
		if err != nil {
			return err
		}
		mgr := automv.NewManager(cat, 1)
		stream := mkStream()
		stmt0, err := sql.Parse(stream[0])
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := mgr.Observe(stmt0); err != nil {
			return err
		}
		buildT := time.Since(start)
		hits := 0
		var maint time.Duration
		var hitT time.Duration
		for i, q := range stream {
			if i > 0 && i%10 == 0 {
				if err := ingest(cat, t, int64(i)); err != nil {
					return err
				}
			}
			stmt, err := sql.Parse(q)
			if err != nil {
				return err
			}
			start := time.Now()
			_, ok, err := mgr.TryAnswer(stmt) // includes refresh cost
			elapsed := time.Since(start)
			if err != nil {
				return err
			}
			if ok {
				hits++
				hitT += elapsed
				maint += elapsed // refresh happens inside TryAnswer
			}
		}
		coldT, err := coldRun(cat, stream[0]) // cold baseline on the final state
		if err != nil {
			return err
		}
		// Gain measured on end state: best-of-5 view answers vs cold.
		warmBest := time.Duration(0)
		stmtEnd, _ := sql.Parse(stream[0])
		for i := 0; i < 5; i++ {
			start := time.Now()
			if _, ok, err := mgr.TryAnswer(stmtEnd); err != nil || !ok {
				return fmt.Errorf("table1: automv end answer failed: %w", err)
			}
			if d := time.Since(start); i == 0 || d < warmBest {
				warmBest = d
			}
		}
		gain := float64(coldT) / float64(warmBest)
		_ = hitT
		rows = append(rows, row{"AutoMV", buildT, maint, gain, float64(hits) / float64(len(stream))})
	}

	// --- predicate sorting ---
	{
		cat, _, err := mkCat()
		if err != nil {
			return err
		}
		// Twin unsorted catalog receiving the same ingests provides the
		// matched cold baseline.
		twin, twinT, err := mkCat()
		if err != nil {
			return err
		}
		stream := mkStream()
		start := time.Now()
		if _, err := psort.Reorganize(cat, "lineitem", []expr.Pred{
			expr.And(
				expr.Between("l_shipdate", expr.DateLit("1996-01-01"), expr.DateLit("1996-12-31")),
				expr.Cmp("l_quantity", expr.Lt, expr.Int(24)),
			),
		}); err != nil {
			return err
		}
		buildT := time.Since(start)
		t, _ := cat.Table("lineitem")
		var maint time.Duration
		var totalT time.Duration
		for i, q := range stream {
			if i > 0 && i%10 == 0 {
				start := time.Now()
				if err := ingest(cat, t, int64(i)); err != nil {
					return err
				}
				sortedIngest := time.Since(start)
				start = time.Now()
				if err := ingest(twin, twinT, int64(i)); err != nil {
					return err
				}
				plainIngest := time.Since(start)
				if sortedIngest > plainIngest {
					maint += sortedIngest - plainIngest
				}
			}
			d, err := coldRun(cat, q)
			if err != nil {
				return err
			}
			totalT += d
		}
		_ = totalT
		sortedBest, err := coldRun(cat, stream[0])
		if err != nil {
			return err
		}
		twinBest, err := coldRun(twin, stream[0])
		if err != nil {
			return err
		}
		gain := float64(twinBest) / float64(sortedBest)
		// Sorting always "hits": the layout applies to every query.
		rows = append(rows, row{"sorting (pred.)", buildT, maint, gain, 1.0})
	}

	// --- predicate cache ---
	{
		cat, t, err := mkCat()
		if err != nil {
			return err
		}
		cache := pcCache(core.BitmapIndex)
		stream := mkStream()
		var totalHitT time.Duration
		for i, q := range stream {
			if i > 0 && i%10 == 0 {
				if err := ingest(cat, t, int64(i)); err != nil {
					return err
				}
			}
			plan, err := sql.PlanSQL(q, cat)
			if err != nil {
				return err
			}
			start := time.Now()
			_, err = plan.Execute(&engine.ExecCtx{Catalog: cat, Cache: cache, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}, Parallel: true})
			if err != nil {
				return err
			}
			totalHitT += time.Since(start)
		}
		coldT, err := coldRun(cat, stream[0]) // cold baseline on the final state
		if err != nil {
			return err
		}
		// Gain measured on end state: best-of-5 cache-assisted runs vs cold.
		_ = totalHitT
		planEnd, _ := sql.PlanSQL(stream[0], cat)
		warmBest := time.Duration(0)
		for i := 0; i < 5; i++ {
			start := time.Now()
			if _, err := planEnd.Execute(&engine.ExecCtx{Catalog: cat, Cache: cache, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}, Parallel: true}); err != nil {
				return err
			}
			if d := time.Since(start); i == 0 || d < warmBest {
				warmBest = d
			}
		}
		st := cache.Stats()
		hitRate := float64(st.Hits) / float64(st.Hits+st.Misses)
		gain := float64(coldT) / float64(warmBest)
		// Build is a side product of scanning: charge zero extra time
		// (measured separately by Figure 15); maintenance is the Extend path.
		rows = append(rows, row{"predicate cache", 0, 0, gain, hitRate})
	}

	r.printf("%-18s %14s %14s %8s %9s\n", "technique", "build", "maintenance", "gain", "hit rate")
	for _, rw := range rows {
		r.printf("%-18s %14s %14s %7.1fx %8.1f%%\n",
			rw.name, formatDur(rw.build), formatDur(rw.maintenance), rw.gain, 100*rw.hitRate)
	}
	r.printf("(paper's qualitative grades: result cache ++build/+maint/++gain/--hit;\n")
	r.printf(" MVs --build/--maint/+gain/++hit; sorting --build/+maint/+gain/++hit;\n")
	r.printf(" predicate caching ++build/+maint/+gain/+hit)\n\n")
	return nil
}
