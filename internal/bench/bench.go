// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§2 and §5), each printing the same rows or
// series the paper reports. DESIGN.md §3 maps experiment ids to modules.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/storage"
	"github.com/predcache/predcache/internal/tpch"
)

// Config scales the experiments. Fast settings keep unit tests quick; the
// pcbench tool defaults to larger scales.
type Config struct {
	TpchSF    float64
	SSBSF     float64
	TpcdsSF   float64
	Slices    int
	FleetSize int
	// Workload A replay size.
	WorkloadAQueries int
	WorkloadAWarmup  int
	WorkloadARows    int
	// Timing repetitions per measured query.
	Reps int
	Seed int64
	// MaxWorkers caps morsel-parallel operator workers per query; zero means
	// GOMAXPROCS (so `go test -cpu 1,4` scales the DOP naturally).
	MaxWorkers int
}

// DefaultConfig is the pcbench scale.
func DefaultConfig() Config {
	return Config{
		TpchSF: 0.02, SSBSF: 0.01, TpcdsSF: 0.01,
		Slices: 4, FleetSize: 200,
		WorkloadAQueries: 44000, WorkloadAWarmup: 15000, WorkloadARows: 100000,
		Reps: 3, Seed: 1,
	}
}

// FastConfig is the test scale.
func FastConfig() Config {
	return Config{
		TpchSF: 0.003, SSBSF: 0.003, TpcdsSF: 0.003,
		Slices: 2, FleetSize: 40,
		WorkloadAQueries: 2000, WorkloadAWarmup: 800, WorkloadARows: 20000,
		Reps: 1, Seed: 1,
	}
}

// Runner executes experiments.
type Runner struct {
	Cfg Config
	Out io.Writer

	// cached datasets (generated lazily, reused across experiments)
	tpchUniform *tpch.Data
	tpchSkewed  *tpch.Data
}

// NewRunner creates a runner writing to out.
func NewRunner(cfg Config, out io.Writer) *Runner {
	return &Runner{Cfg: cfg, Out: out}
}

func (r *Runner) printf(format string, args ...interface{}) {
	fmt.Fprintf(r.Out, format, args...)
}

// Experiments lists the runnable experiment ids in paper order.
func Experiments() []string {
	return []string{
		"table1", "fig1", "fig2", "table2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"table3", "fig13", "fig14", "fig15", "table4", "fig16", "fig17", "fig18",
	}
}

// Run executes one experiment by id.
func (r *Runner) Run(id string) error {
	switch id {
	case "table1":
		return r.Table1()
	case "fig1":
		return r.Fig1()
	case "fig2":
		return r.Fig2()
	case "table2":
		return r.Table2()
	case "fig3":
		return r.Fig3()
	case "fig4":
		return r.Fig4()
	case "fig5":
		return r.Fig5()
	case "fig6":
		return r.Fig6()
	case "fig7":
		return r.Fig7()
	case "table3":
		return r.Table3()
	case "fig13":
		return r.Fig13()
	case "fig14":
		return r.Fig14()
	case "fig15":
		return r.Fig15()
	case "table4":
		return r.Table4()
	case "fig16":
		return r.Fig16()
	case "fig17":
		return r.Fig17()
	case "fig18":
		return r.Fig18()
	}
	return fmt.Errorf("bench: unknown experiment %q (known: %v)", id, Experiments())
}

// All runs every experiment.
func (r *Runner) All() error {
	for _, id := range Experiments() {
		if err := r.Run(id); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

// --- shared helpers ---

// tpchData lazily generates and caches TPC-H data.
func (r *Runner) tpchData(skewed bool) *tpch.Data {
	if skewed {
		if r.tpchSkewed == nil {
			r.tpchSkewed = tpch.Generate(tpch.Config{SF: r.Cfg.TpchSF, Skewed: true, Seed: r.Cfg.Seed})
		}
		return r.tpchSkewed
	}
	if r.tpchUniform == nil {
		r.tpchUniform = tpch.Generate(tpch.Config{SF: r.Cfg.TpchSF, Skewed: false, Seed: r.Cfg.Seed})
	}
	return r.tpchUniform
}

// loadTpch loads (cached) TPC-H data into a fresh catalog.
func (r *Runner) loadTpch(skewed bool) (*storage.Catalog, error) {
	cat := storage.NewCatalog()
	if err := r.tpchData(skewed).Load(cat, r.Cfg.Slices); err != nil {
		return nil, err
	}
	return cat, nil
}

// measured holds one measured query execution.
type measured struct {
	runtime time.Duration
	stats   storage.ScanStatsSnapshot
}

// runPlan executes a plan, returning the fastest of reps runs.
func runPlan(plan engine.Node, ec func() *engine.ExecCtx, reps int) (measured, error) {
	if reps < 1 {
		reps = 1
	}
	var best measured
	for i := 0; i < reps; i++ {
		ctx := ec()
		start := time.Now()
		_, err := plan.Execute(ctx)
		elapsed := time.Since(start)
		if err != nil {
			return measured{}, err
		}
		if i == 0 || elapsed < best.runtime {
			best = measured{runtime: elapsed, stats: ctx.Stats.Snapshot()}
		}
	}
	return best, nil
}

// execOnce executes a plan once and returns its stats.
func execOnce(plan engine.Node, ctx *engine.ExecCtx) (storage.ScanStatsSnapshot, error) {
	if ctx.Stats == nil {
		ctx.Stats = &storage.ScanStats{}
	}
	if _, err := plan.Execute(ctx); err != nil {
		return storage.ScanStatsSnapshot{}, err
	}
	return ctx.Stats.Snapshot(), nil
}

// geoMean computes the geometric mean of positive values.
func geoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	logSum := 0.0
	n := 0
	for _, v := range vals {
		if v > 0 {
			logSum += ln(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return exp(logSum / float64(n))
}

func ln(x float64) float64 { return math.Log(x) }

func exp(x float64) float64 { return math.Exp(x) }

// formatBytes renders a byte count human-readably.
func formatBytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// formatDur renders a duration with ms precision.
func formatDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

// histogram renders an ASCII bar for a 0-1 value.
func bar(v float64, width int) string {
	n := int(v * float64(width))
	if n > width {
		n = width
	}
	out := make([]byte, width)
	for i := range out {
		if i < n {
			out[i] = '#'
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}

// sortedKeysF returns map keys sorted.
func sortedKeysF(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// pcCache builds a predicate cache of the given kind with paper defaults.
func pcCache(kind core.EntryKind) *core.Cache {
	return core.NewCache(core.Config{Kind: kind, MaxRanges: 16384, RowsPerBlock: 1000})
}
