package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestMicroJSONCarriesCacheBreakdown(t *testing.T) {
	results := []MicroResult{
		{
			Name: "ScanWarm", Iterations: 10, NsPerOp: 1234.5, AllocsPerOp: 37,
			RowsScanned: 400, CacheHitRate: 1.0,
			BlocksAccessed: 3, BlocksPrunedZoneMap: 12, BlocksPrunedCache: 385,
		},
		{Name: "ScanCold", Iterations: 5, NsPerOp: 9999, RowsScanned: 400000},
	}
	var buf bytes.Buffer
	if err := WriteMicroJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cache_hit_rate", "blocks_accessed", "blocks_pruned_zonemap", "blocks_pruned_cache"} {
		if !strings.Contains(buf.String(), key) {
			t.Fatalf("recording missing %q:\n%s", key, buf.String())
		}
	}
	var back []MicroResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back[0].CacheHitRate != 1.0 || back[0].BlocksPrunedCache != 385 || back[0].BlocksPrunedZoneMap != 12 {
		t.Fatalf("round-trip lost the breakdown: %+v", back[0])
	}
	// Old recordings without the new fields still compare cleanly.
	old := `[{"name":"ScanWarm","iterations":9,"ns_per_op":1300,"allocs_per_op":37,"bytes_per_op":0,"rows_scanned":400}]`
	out, err := CompareMicroJSON([]byte(old), buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ScanWarm") {
		t.Fatalf("compare output:\n%s", out)
	}
}
