package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestMicroJSONCarriesCacheBreakdown(t *testing.T) {
	results := []MicroResult{
		{
			Name: "ScanWarm", Iterations: 10, NsPerOp: 1234.5, AllocsPerOp: 37,
			RowsScanned: 400, CacheHitRate: 1.0,
			BlocksAccessed: 3, BlocksPrunedZoneMap: 12, BlocksPrunedCache: 385,
		},
		{Name: "ScanCold", Iterations: 5, NsPerOp: 9999, RowsScanned: 400000},
	}
	var buf bytes.Buffer
	if err := WriteMicroJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cache_hit_rate", "blocks_accessed", "blocks_pruned_zonemap", "blocks_pruned_cache"} {
		if !strings.Contains(buf.String(), key) {
			t.Fatalf("recording missing %q:\n%s", key, buf.String())
		}
	}
	var back []MicroResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back[0].CacheHitRate != 1.0 || back[0].BlocksPrunedCache != 385 || back[0].BlocksPrunedZoneMap != 12 {
		t.Fatalf("round-trip lost the breakdown: %+v", back[0])
	}
	// Old recordings without the new fields still compare cleanly.
	old := `[{"name":"ScanWarm","iterations":9,"ns_per_op":1300,"allocs_per_op":37,"bytes_per_op":0,"rows_scanned":400}]`
	out, err := CompareMicroJSON([]byte(old), buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ScanWarm") {
		t.Fatalf("compare output:\n%s", out)
	}
}

func TestMicroJSONCarriesAttribution(t *testing.T) {
	results := []MicroResult{{
		Name: "ScanWarm", Iterations: 10, NsPerOp: 1000, AllocsPerOp: 37,
		CPUMicros: 850, AllocsPerQuery: 60,
	}}
	var buf bytes.Buffer
	if err := WriteMicroJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"cpu_us":850`, `"allocs_per_query":60`} {
		if !strings.Contains(buf.String(), key) {
			t.Fatalf("recording missing %q:\n%s", key, buf.String())
		}
	}
	var back []MicroResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back[0].CPUMicros != 850 || back[0].AllocsPerQuery != 60 {
		t.Fatalf("round-trip lost attribution: %+v", back[0])
	}
}

func TestCompareMicroJSONFailsOnAllocRegression(t *testing.T) {
	old := `[{"name":"ScanWarm","ns_per_op":1000,"allocs_per_op":100,"allocs_per_query":50}]`

	// Within slack: 100 -> 110 is exactly old*1.10, not a regression.
	ok := `[{"name":"ScanWarm","ns_per_op":1000,"allocs_per_op":110,"allocs_per_query":50}]`
	if out, err := CompareMicroJSON([]byte(old), []byte(ok)); err != nil {
		t.Fatalf("within-slack compare failed: %v\n%s", err, out)
	}

	// allocs/op regression: 100 -> 200 blows past old*1.10+16.
	bad := `[{"name":"ScanWarm","ns_per_op":1000,"allocs_per_op":200,"allocs_per_query":50}]`
	out, err := CompareMicroJSON([]byte(old), []byte(bad))
	if err == nil {
		t.Fatalf("allocs/op regression not flagged:\n%s", out)
	}
	if !strings.Contains(err.Error(), "ScanWarm") || !strings.Contains(err.Error(), "100->200") {
		t.Fatalf("regression error lacks detail: %v", err)
	}
	if !strings.Contains(out, "ScanWarm") {
		t.Fatalf("regression must still render the report:\n%s", out)
	}

	// allocs_per_query regression is caught independently.
	badQ := `[{"name":"ScanWarm","ns_per_op":1000,"allocs_per_op":100,"allocs_per_query":500}]`
	if out, err := CompareMicroJSON([]byte(old), []byte(badQ)); err == nil {
		t.Fatalf("allocs_per_query regression not flagged:\n%s", out)
	}

	// A brand-new benchmark (no old baseline) never fails.
	newOnly := `[{"name":"ScanWarm","ns_per_op":1000,"allocs_per_op":100,"allocs_per_query":50},
	             {"name":"Fresh","ns_per_op":1,"allocs_per_op":9999,"allocs_per_query":9999}]`
	if out, err := CompareMicroJSON([]byte(old), []byte(newOnly)); err != nil {
		t.Fatalf("new benchmark treated as regression: %v\n%s", err, out)
	}
}
