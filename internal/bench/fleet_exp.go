package bench

import (
	"github.com/predcache/predcache/internal/fleet"
)

func (r *Runner) fleetSim() *fleet.Fleet {
	return fleet.Simulate(fleet.Config{
		Clusters:      r.Cfg.FleetSize,
		MinStatements: 1000,
		MaxStatements: 5000,
		Seed:          2023,
	})
}

var cdfPercentiles = []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

func (r *Runner) printCDF(label string, values []float64) {
	r.printf("%-34s", label)
	for _, v := range fleet.CDF(values, cdfPercentiles) {
		r.printf(" %5.2f", v)
	}
	r.printf("\n")
}

// Fig1 reports the per-cluster query repetition CDF for a month and a week.
func (r *Runner) Fig1() error {
	f := r.fleetSim()
	r.printf("== Figure 1: %% of queries that repeat per cluster ==\n")
	r.printf("%-34s", "percentile")
	for _, p := range cdfPercentiles {
		r.printf(" %4d%%", p)
	}
	r.printf("\n")
	month := f.QueryRepetitionRates(1.0)
	week := f.QueryRepetitionRates(0.25)
	r.printCDF("repeat rate (1 month)", month)
	r.printCDF("repeat rate (1 week)", week)
	r.printf("mean month=%.3f week=%.3f | clusters with >=75%% repeats: %.0f%% (paper: >50%%)\n\n",
		fleet.Mean(month), fleet.Mean(week), 100*fleet.FractionAbove(month, 0.75))
	return nil
}

// Fig2 reports per-cluster select-share distribution.
func (r *Runner) Fig2() error {
	f := r.fleetSim()
	_, selectShares := f.StatementMix()
	r.printf("== Figure 2: statement mix per cluster ==\n")
	r.printf("%-34s", "percentile")
	for _, p := range cdfPercentiles {
		r.printf(" %4d%%", p)
	}
	r.printf("\n")
	r.printCDF("select share of statements", selectShares)
	r.printf("clusters where selects dominate (>50%%): %.0f%% (paper: ~25%%)\n\n",
		100*fleet.FractionAbove(selectShares, 0.5))
	return nil
}

// Table2 reports the fleet-aggregate statement mix.
func (r *Runner) Table2() error {
	f := r.fleetSim()
	agg, _ := f.StatementMix()
	r.printf("== Table 2: SQL statements run on the clusters over one month ==\n")
	r.printf("%-10s %10s %10s\n", "type", "measured", "paper")
	paper := map[string]float64{
		"select": 42.3, "insert": 17.8, "copy": 6.9, "delete": 6.3, "update": 3.6, "other": 23.3,
	}
	for _, k := range []string{"select", "insert", "copy", "delete", "update", "other"} {
		r.printf("%-10s %9.1f%% %9.1f%%\n", k, 100*agg[k], paper[k])
	}
	r.printf("\n")
	return nil
}

// Fig3 reports write/read ratios per cluster.
func (r *Runner) Fig3() error {
	f := r.fleetSim()
	ratios := f.ReadWriteRatios()
	readHeavy := 0
	for _, v := range ratios {
		if v < 1 {
			readHeavy++
		}
	}
	r.printf("== Figure 3: data-manipulation vs select statements per cluster ==\n")
	r.printf("%-34s", "percentile")
	for _, p := range cdfPercentiles {
		r.printf(" %4d%%", p)
	}
	r.printf("\n")
	r.printCDF("write/read statement ratio", ratios)
	r.printf("read-heavy clusters (ratio<1): %.0f%% (paper: ~60%%)\n\n",
		100*float64(readHeavy)/float64(len(ratios)))
	return nil
}

// Fig4 compares query and scan repetition per cluster.
func (r *Runner) Fig4() error {
	f := r.fleetSim()
	q := f.QueryRepetitionRates(1.0)
	s := f.ScanRepetitionRates()
	r.printf("== Figure 4: query vs scan repetition per cluster ==\n")
	r.printf("%-34s", "percentile")
	for _, p := range cdfPercentiles {
		r.printf(" %4d%%", p)
	}
	r.printf("\n")
	r.printCDF("query repeat rate", q)
	r.printCDF("scan repeat rate", s)
	r.printf("means: queries %.1f%%, scans %.1f%% (paper: 71.2%% / 71.9%%)\n\n",
		100*fleet.Mean(q), 100*fleet.Mean(s))
	return nil
}

// Fig5 reports repetition grouped by scanned-table size.
func (r *Runner) Fig5() error {
	f := r.fleetSim()
	qRates, sRates := f.RepetitionByTableSize()
	r.printf("== Figure 5: repetition by scanned-table size ==\n")
	r.printf("%-18s %12s %12s\n", "table size", "queries", "scans")
	for s := fleet.SizeClass(0); s < 4; s++ {
		r.printf("%-18s %11.1f%% %11.1f%%\n", s, 100*qRates[s], 100*sRates[s])
	}
	r.printf("(paper: scan repetition roughly uniform across sizes;\n")
	r.printf(" queries on the largest tables repeat less)\n\n")
	return nil
}

// Fig6 reports the result-cache hit-rate CDF.
func (r *Runner) Fig6() error {
	f := r.fleetSim()
	rates := f.ResultCacheHitRates()
	r.printf("== Figure 6: result-cache hit rate per cluster ==\n")
	r.printf("%-34s", "percentile")
	for _, p := range cdfPercentiles {
		r.printf(" %4d%%", p)
	}
	r.printf("\n")
	r.printCDF("result-cache hit rate", rates)
	r.printf("mean %.1f%% | clusters over 50%%: %.0f%% (paper: ~20%% mean, ~15%% over 50%%)\n\n",
		100*fleet.Mean(rates), 100*fleet.FractionAbove(rates, 0.5))
	return nil
}

// Fig7 correlates hit rate with update rate.
func (r *Runner) Fig7() error {
	f := r.fleetSim()
	upd, hit := f.HitRateVsUpdateRate()
	r.printf("== Figure 7: result-cache hit rate vs update rate ==\n")
	r.printf("%-22s %10s %10s\n", "update share bucket", "clusters", "hit rate")
	buckets := []struct {
		lo, hi float64
		label  string
	}{
		{0, 0.05, "0-5%"}, {0.05, 0.15, "5-15%"}, {0.15, 0.3, "15-30%"},
		{0.3, 0.5, "30-50%"}, {0.5, 1.01, ">50%"},
	}
	for _, b := range buckets {
		var rates []float64
		for i := range upd {
			if upd[i] >= b.lo && upd[i] < b.hi {
				rates = append(rates, hit[i])
			}
		}
		r.printf("%-22s %10d %9.1f%%  %s\n", b.label, len(rates), 100*fleet.Mean(rates), bar(fleet.Mean(rates), 30))
	}
	r.printf("(paper: >80%% hit rate with almost no updates, dropping sharply with update rate)\n\n")
	return nil
}
