package bench

import (
	"bytes"
	"strings"
	"testing"
)

func fastRunner() (*Runner, *bytes.Buffer) {
	var buf bytes.Buffer
	return NewRunner(FastConfig(), &buf), &buf
}

func TestUnknownExperiment(t *testing.T) {
	r, _ := fastRunner()
	if err := r.Run("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentList(t *testing.T) {
	ids := Experiments()
	if len(ids) != 17 {
		t.Fatalf("%d experiments", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate %s", id)
		}
		seen[id] = true
	}
}

// Each experiment must run at fast scale and produce non-trivial output.
func TestFleetExperiments(t *testing.T) {
	r, buf := fastRunner()
	for _, id := range []string{"fig1", "fig2", "table2", "fig3", "fig4", "fig5", "fig6", "fig7"} {
		buf.Reset()
		if err := r.Run(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() < 50 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

func TestTable3(t *testing.T) {
	r, buf := fastRunner()
	if err := r.Run("table3"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"B-tree", "zone map", "result cache", "AutoMV", "predicate cache (range)", "predicate cache (bitmap)", "predicate sorting"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table3 missing row %q:\n%s", want, out)
		}
	}
}

func TestTable1(t *testing.T) {
	r, buf := fastRunner()
	if err := r.Run("table1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"result cache", "AutoMV", "sorting", "predicate cache", "hit rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestWorkloadFigures(t *testing.T) {
	r, buf := fastRunner()
	if err := r.Run("fig13"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hit rate") {
		t.Fatal("fig13 output")
	}
	buf.Reset()
	if err := r.Run("fig14"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "distinct 401") {
		t.Fatalf("fig14 output:\n%s", buf.String())
	}
}

func TestFig15(t *testing.T) {
	r, buf := fastRunner()
	if err := r.Run("fig15"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "average overhead") {
		t.Fatal("fig15 output")
	}
}

func TestTable4AndFig18(t *testing.T) {
	r, buf := fastRunner()
	if err := r.Run("table4"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Orig.", "PC-bitmap", "PC-range", "PSort", "Q19", "geo"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table4 missing %q", want)
		}
	}
	buf.Reset()
	if err := r.Run("fig18"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PS+PC") {
		t.Fatal("fig18 output")
	}
}

func TestFig16AndFig17(t *testing.T) {
	r, buf := fastRunner()
	if err := r.Run("fig16"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "semi-join") {
		t.Fatal("fig16 output")
	}
	buf.Reset()
	if err := r.Run("fig17"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TPC-DS", "SSB", "uniform"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig17 missing %q", want)
		}
	}
}
