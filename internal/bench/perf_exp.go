package bench

import (
	"fmt"
	"time"

	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/psort"
	"github.com/predcache/predcache/internal/ssb"
	"github.com/predcache/predcache/internal/storage"
	"github.com/predcache/predcache/internal/tpcds"
	"github.com/predcache/predcache/internal/tpch"
	"github.com/predcache/predcache/internal/workload"
)

// Fig13 replays Workload A and reports the predicate-cache hit rate over
// time (§5.3).
func (r *Runner) Fig13() error {
	db, err := workload.SetupDB(r.Cfg.WorkloadARows, r.Cfg.Seed)
	if err != nil {
		return err
	}
	stream := workload.GenerateA(workload.AConfig{
		TotalQueries:  r.Cfg.WorkloadAQueries,
		WarmupQueries: r.Cfg.WorkloadAWarmup,
		Seed:          13,
	})
	bucketSize := len(stream) / 20
	if bucketSize < 1 {
		bucketSize = 1
	}
	buckets, err := workload.Replay(db, stream, bucketSize)
	if err != nil {
		return err
	}
	r.printf("== Figure 13: predicate-cache hit rate over time (Workload A, %d queries) ==\n", len(stream))
	for _, b := range buckets {
		r.printf("queries %6d+  hit rate %5.1f%%  %s\n", b.StartQuery, 100*b.HitRate, bar(b.HitRate, 40))
	}
	st := db.CacheStats()
	r.printf("overall: hits %d misses %d (paper: low during the first ~15k queries, then rising)\n\n", st.Hits, st.Misses)
	return nil
}

// Fig14 reports Workload B's scan-repetition histogram (§5.3).
func (r *Runner) Fig14() error {
	s := workload.GenerateB(14)
	st := s.Stats()
	r.printf("== Figure 14: scan repetitions in Workload B ==\n")
	r.printf("total scans %d | distinct %d | singletons %d | repeating %d\n",
		st.TotalScans, st.DistinctScans, st.Singletons, st.Repeating)
	r.printf("%-12s %16s %14s\n", "repetitions", "distinct scans", "total scans")
	for _, b := range []string{"1", "2-9", "10-99", "100+"} {
		r.printf("%-12s %16d %14d\n", b, st.Distinct[b], st.Totals[b])
	}
	// Replay through the cache to report the achieved hit rate.
	db, err := workload.SetupDB(r.Cfg.WorkloadARows/2, r.Cfg.Seed)
	if err != nil {
		return err
	}
	if _, err := workload.Replay(db, s.Scans, len(s.Scans)); err != nil {
		return err
	}
	cs := db.CacheStats()
	r.printf("replayed hit rate: %.1f%% (paper: more than 90%% of the scans repeat)\n\n",
		100*float64(cs.Hits)/float64(cs.Hits+cs.Misses))
	return nil
}

// Fig15 measures the build overhead: every scan inserts a cache entry but
// never uses one, cache cleared between queries (§5.4).
func (r *Runner) Fig15() error {
	r.printf("== Figure 15: predicate-cache build overhead (insert-only, cache cleared per query) ==\n")
	run := func(name string, cat *storage.Catalog, plans []engine.Node, labels []string) error {
		r.printf("-- %s --\n", name)
		// Sub-millisecond timings are noisy; take the best of many runs.
		reps := r.Cfg.Reps*3 + 2
		var deltas []float64
		for i, plan := range plans {
			base, err := runPlan(plan, func() *engine.ExecCtx {
				return &engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}, Parallel: true, MaxWorkers: r.Cfg.MaxWorkers}
			}, reps)
			if err != nil {
				return err
			}
			cache := pcCache(core.BitmapIndex)
			ins, err := runPlan(plan, func() *engine.ExecCtx {
				cache.Clear()
				return &engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{},
					Parallel: true, MaxWorkers: r.Cfg.MaxWorkers, Cache: cache, ForceCacheInsertOnly: true}
			}, reps)
			if err != nil {
				return err
			}
			delta := 100 * (float64(ins.runtime)/float64(base.runtime) - 1)
			deltas = append(deltas, delta)
			r.printf("%-8s base %10s  insert-only %10s  overhead %+6.1f%%\n",
				labels[i], formatDur(base.runtime), formatDur(ins.runtime), delta)
		}
		sum := 0.0
		for _, d := range deltas {
			sum += d
		}
		r.printf("average overhead: %+.2f%% (paper: <0.5%% on average, isolated cases up to 8%%)\n", sum/float64(len(deltas)))
		return nil
	}

	catH, err := r.loadTpch(false)
	if err != nil {
		return err
	}
	var plansH []engine.Node
	var labelsH []string
	for _, q := range tpch.Queries(tpch.DefaultParams()) {
		plan, err := q.Plan(catH)
		if err != nil {
			return err
		}
		plansH = append(plansH, plan)
		labelsH = append(labelsH, fmt.Sprintf("Q%d", q.ID))
	}
	if err := run("TPC-H", catH, plansH, labelsH); err != nil {
		return err
	}

	dsData := tpcds.Generate(tpcds.Config{SF: r.Cfg.TpcdsSF, Seed: r.Cfg.Seed})
	catDS := storage.NewCatalog()
	if err := dsData.Load(catDS, r.Cfg.Slices); err != nil {
		return err
	}
	var plansDS []engine.Node
	var labelsDS []string
	for _, q := range tpcds.Queries() {
		plan, err := q.Plan(catDS)
		if err != nil {
			return err
		}
		plansDS = append(plansDS, plan)
		labelsDS = append(labelsDS, q.ID)
	}
	if err := run("TPC-DS", catDS, plansDS, labelsDS); err != nil {
		return err
	}
	r.printf("\n")
	return nil
}

// psortPreds are the "most selective predicates in the TPC-H queries" used
// to cluster lineitem for the predicate-sorting baseline (§5.6).
func psortPreds() []expr.Pred {
	return []expr.Pred{
		expr.And(
			expr.Between("l_shipdate", expr.DateLit("1996-01-01"), expr.DateLit("1996-12-31")),
			expr.Between("l_discount", expr.Float(0.05), expr.Float(0.07)),
			expr.Cmp("l_quantity", expr.Lt, expr.Int(24)),
		),
		expr.In("l_shipmode", expr.Str("AIR"), expr.Str("REG AIR")),
		expr.Cmp("l_returnflag", expr.Eq, expr.Str("R")),
	}
}

// table4Config is one measured engine configuration.
type table4Config struct {
	name   string
	cat    *storage.Catalog
	cache  *core.Cache
	sorted bool
}

// setupTable4 builds the four configurations over skewed TPC-H.
func (r *Runner) setupTable4(withPSPC bool) ([]*table4Config, error) {
	var cfgs []*table4Config
	catOrig, err := r.loadTpch(true)
	if err != nil {
		return nil, err
	}
	cfgs = append(cfgs, &table4Config{name: "Orig.", cat: catOrig})

	catB, err := r.loadTpch(true)
	if err != nil {
		return nil, err
	}
	cfgs = append(cfgs, &table4Config{name: "PC-bitmap", cat: catB, cache: pcCache(core.BitmapIndex)})

	catR, err := r.loadTpch(true)
	if err != nil {
		return nil, err
	}
	cfgs = append(cfgs, &table4Config{name: "PC-range", cat: catR, cache: pcCache(core.RangeIndex)})

	catPS, err := r.loadTpch(true)
	if err != nil {
		return nil, err
	}
	if _, err := psort.Reorganize(catPS, "lineitem", psortPreds()); err != nil {
		return nil, err
	}
	cfgs = append(cfgs, &table4Config{name: "PSort", cat: catPS, sorted: true})

	if withPSPC {
		catBoth, err := r.loadTpch(true)
		if err != nil {
			return nil, err
		}
		if _, err := psort.Reorganize(catBoth, "lineitem", psortPreds()); err != nil {
			return nil, err
		}
		cfgs = append(cfgs, &table4Config{name: "PS+PC", cat: catBoth, cache: pcCache(core.BitmapIndex), sorted: true})
	}
	return cfgs, nil
}

// measureSuite runs all 22 queries against one configuration: a warm-up
// execution populates the cache, then the best of Reps warm runs is
// reported.
func (r *Runner) measureSuite(cfg *table4Config, queries []tpch.Query, disableSJCache bool) (map[int]measured, error) {
	out := make(map[int]measured, len(queries))
	for _, q := range queries {
		plan, err := q.Plan(cfg.cat)
		if err != nil {
			return nil, fmt.Errorf("Q%d: %w", q.ID, err)
		}
		mkCtx := func() *engine.ExecCtx {
			return &engine.ExecCtx{
				Catalog: cfg.cat, Snapshot: cfg.cat.Snapshot(), Stats: &storage.ScanStats{},
				Parallel: true, MaxWorkers: r.Cfg.MaxWorkers, Cache: cfg.cache, DisableSemiJoinCache: disableSJCache,
			}
		}
		// Warm-up populates cache entries.
		if _, err := execOnce(plan, mkCtx()); err != nil {
			return nil, fmt.Errorf("Q%d warmup: %w", q.ID, err)
		}
		m, err := runPlan(plan, mkCtx, r.Cfg.Reps)
		if err != nil {
			return nil, fmt.Errorf("Q%d: %w", q.ID, err)
		}
		out[q.ID] = m
	}
	return out, nil
}

// Table4 reports runtime, rows scanned and blocks accessed per TPC-H query
// across the four configurations (§5.5).
func (r *Runner) Table4() error {
	cfgs, err := r.setupTable4(false)
	if err != nil {
		return err
	}
	queries := tpch.Queries(tpch.DefaultParams())
	results := make([]map[int]measured, len(cfgs))
	for i, cfg := range cfgs {
		res, err := r.measureSuite(cfg, queries, false)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.name, err)
		}
		results[i] = res
	}
	r.printf("== Table 4: TPC-H (skewed, SF %.3f): runtime / rows scanned / blocks accessed ==\n", r.Cfg.TpchSF)
	r.printf("%-5s", "query")
	for _, c := range cfgs {
		r.printf(" | %28s", c.name)
	}
	r.printf("\n")
	geo := make([][]float64, len(cfgs))
	for _, q := range queries {
		r.printf("Q%-4d", q.ID)
		for i := range cfgs {
			m := results[i][q.ID]
			r.printf(" | %9s %8dr %7db", formatDur(m.runtime), m.stats.RowsScanned, m.stats.BlocksAccessed)
			geo[i] = append(geo[i], float64(m.runtime.Microseconds()))
		}
		r.printf("\n")
	}
	r.printf("%-5s", "geo")
	for i := range cfgs {
		var rows, blocks int64
		for _, q := range queries {
			rows += results[i][q.ID].stats.RowsScanned
			blocks += results[i][q.ID].stats.BlocksAccessed
		}
		r.printf(" | %9s %8dr %7db", formatDur(time.Duration(geoMean(geo[i]))*time.Microsecond), rows, blocks)
	}
	r.printf("\n(paper's shape: PC cuts rows scanned ~3-4x and blocks ~30%%; runtimes improve ~10%%\n")
	r.printf(" overall with large wins on selective queries like Q19; PSort is comparable)\n\n")
	return nil
}

// Fig16 measures the impact of caching semi-join filters: warm runtimes
// with the semi-join keys enabled vs disabled (§5.5.1).
func (r *Runner) Fig16() error {
	catOrig, err := r.loadTpch(true)
	if err != nil {
		return err
	}
	orig := &table4Config{name: "orig", cat: catOrig}
	queries := tpch.Queries(tpch.DefaultParams())
	base, err := r.measureSuite(orig, queries, false)
	if err != nil {
		return err
	}

	catNoSJ, err := r.loadTpch(true)
	if err != nil {
		return err
	}
	noSJ, err := r.measureSuite(&table4Config{name: "pc-nosj", cat: catNoSJ, cache: pcCache(core.BitmapIndex)}, queries, true)
	if err != nil {
		return err
	}
	catSJ, err := r.loadTpch(true)
	if err != nil {
		return err
	}
	withSJ, err := r.measureSuite(&table4Config{name: "pc-sj", cat: catSJ, cache: pcCache(core.BitmapIndex)}, queries, false)
	if err != nil {
		return err
	}

	r.printf("== Figure 16: impact of caching semi-join filters (TPC-H skewed) ==\n")
	r.printf("%-5s %12s %12s %12s %10s %10s\n", "query", "orig", "pc w/o sj", "pc with sj", "spd w/o", "spd with")
	var spdNo, spdSJ []float64
	for _, q := range queries {
		b := float64(base[q.ID].runtime)
		n := float64(noSJ[q.ID].runtime)
		s := float64(withSJ[q.ID].runtime)
		r.printf("Q%-4d %12s %12s %12s %9.2fx %9.2fx\n", q.ID,
			formatDur(base[q.ID].runtime), formatDur(noSJ[q.ID].runtime), formatDur(withSJ[q.ID].runtime),
			b/n, b/s)
		spdNo = append(spdNo, b/n)
		spdSJ = append(spdSJ, b/s)
	}
	r.printf("geomean speedup: without sj %.2fx, with sj %.2fx\n", geoMean(spdNo), geoMean(spdSJ))
	r.printf("(paper: semi-join keys make entries up to 100x more selective; speedups up to 10x)\n\n")
	return nil
}

// Fig17 reports end-to-end speedups on TPC-DS, SSB, and uniform TPC-H
// (§5.5.2).
func (r *Runner) Fig17() error {
	r.printf("== Figure 17: end-to-end speedups with the predicate cache ==\n")
	report := func(name string, ids []string, base, warm []measured) {
		var spds []float64
		r.printf("-- %s --\n", name)
		for i := range ids {
			spd := float64(base[i].runtime) / float64(warm[i].runtime)
			spds = append(spds, spd)
			r.printf("%-8s orig %10s  pc %10s  speedup %5.2fx  rows %8d -> %8d\n",
				ids[i], formatDur(base[i].runtime), formatDur(warm[i].runtime), spd,
				base[i].stats.RowsScanned, warm[i].stats.RowsScanned)
		}
		r.printf("geomean speedup: %.2fx\n", geoMean(spds))
	}

	runSuite := func(cat *storage.Catalog, plans []engine.Node) ([]measured, []measured, error) {
		var base, warm []measured
		cache := pcCache(core.BitmapIndex)
		for _, plan := range plans {
			b, err := runPlan(plan, func() *engine.ExecCtx {
				return &engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}, Parallel: true, MaxWorkers: r.Cfg.MaxWorkers}
			}, r.Cfg.Reps)
			if err != nil {
				return nil, nil, err
			}
			mkCtx := func() *engine.ExecCtx {
				return &engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}, Parallel: true, MaxWorkers: r.Cfg.MaxWorkers, Cache: cache}
			}
			if _, err := execOnce(plan, mkCtx()); err != nil {
				return nil, nil, err
			}
			w, err := runPlan(plan, mkCtx, r.Cfg.Reps)
			if err != nil {
				return nil, nil, err
			}
			base = append(base, b)
			warm = append(warm, w)
		}
		return base, warm, nil
	}

	// TPC-DS (skewed variant, the realistic case).
	dsData := tpcds.Generate(tpcds.Config{SF: r.Cfg.TpcdsSF, Skewed: true, Seed: r.Cfg.Seed})
	catDS := storage.NewCatalog()
	if err := dsData.Load(catDS, r.Cfg.Slices); err != nil {
		return err
	}
	var dsPlans []engine.Node
	var dsIDs []string
	for _, q := range tpcds.Queries() {
		plan, err := q.Plan(catDS)
		if err != nil {
			return err
		}
		dsPlans = append(dsPlans, plan)
		dsIDs = append(dsIDs, q.ID)
	}
	base, warm, err := runSuite(catDS, dsPlans)
	if err != nil {
		return err
	}
	report("TPC-DS", dsIDs, base, warm)

	// SSB (skewed).
	ssbData := ssb.Generate(ssb.Config{SF: r.Cfg.SSBSF, Skewed: true, Seed: r.Cfg.Seed})
	catSSB := storage.NewCatalog()
	if err := ssbData.Load(catSSB, r.Cfg.Slices); err != nil {
		return err
	}
	var ssbPlans []engine.Node
	var ssbIDs []string
	for _, q := range ssb.Queries() {
		plan, err := q.Plan(catSSB)
		if err != nil {
			return err
		}
		ssbPlans = append(ssbPlans, plan)
		ssbIDs = append(ssbIDs, "Q"+q.ID)
	}
	base, warm, err = runSuite(catSSB, ssbPlans)
	if err != nil {
		return err
	}
	report("SSB", ssbIDs, base, warm)

	// Uniform TPC-H: the paper's null result — evenly distributed data gives
	// the block-granular cache nothing to skip.
	catH, err := r.loadTpch(false)
	if err != nil {
		return err
	}
	var hPlans []engine.Node
	var hIDs []string
	for _, q := range tpch.Queries(tpch.DefaultParams()) {
		plan, err := q.Plan(catH)
		if err != nil {
			return err
		}
		hPlans = append(hPlans, plan)
		hIDs = append(hIDs, fmt.Sprintf("Q%d", q.ID))
	}
	base, warm, err = runSuite(catH, hPlans)
	if err != nil {
		return err
	}
	report("TPC-H uniform (expect ~1x)", hIDs, base, warm)
	r.printf("\n")
	return nil
}

// Fig18 combines predicate sorting with predicate caching (§5.6).
func (r *Runner) Fig18() error {
	cfgs, err := r.setupTable4(true)
	if err != nil {
		return err
	}
	queries := tpch.Queries(tpch.DefaultParams())
	r.printf("== Figure 18: predicate caching + predicate sorting (TPC-H skewed) ==\n")
	r.printf("%-10s %14s %14s %14s\n", "config", "geo runtime", "rows scanned", "blocks")
	for _, cfg := range cfgs {
		res, err := r.measureSuite(cfg, queries, false)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.name, err)
		}
		var times []float64
		var rows, blocks int64
		for _, q := range queries {
			times = append(times, float64(res[q.ID].runtime.Microseconds()))
			rows += res[q.ID].stats.RowsScanned
			blocks += res[q.ID].stats.BlocksAccessed
		}
		r.printf("%-10s %14s %14d %14d\n", cfg.name,
			formatDur(time.Duration(geoMean(times))*time.Microsecond), rows, blocks)
	}
	r.printf("(paper: both provide similar gains; combining them adds no further benefit)\n\n")
	return nil
}
