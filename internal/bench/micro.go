package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"testing"

	predcache "github.com/predcache/predcache"
)

// MicroResult is one machine-readable micro-benchmark measurement. pcbench
// -json emits a list of these so scripts/bench_compare.sh can record a
// performance baseline per PR and diff two recordings.
type MicroResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// RowsScanned is the per-query rows-scanned counter of one extra
	// post-timing execution (0 for harness experiments that run many queries).
	RowsScanned int64 `json:"rows_scanned"`
	// CacheHitRate and the block counters come from the same post-timing
	// probe: scan cache hits / (hits+misses), and where the touched blocks
	// went — eliminated by zone maps, excluded by a predicate-cache entry,
	// or actually accessed.
	CacheHitRate        float64 `json:"cache_hit_rate"`
	BlocksAccessed      int64   `json:"blocks_accessed"`
	BlocksPrunedZoneMap int64   `json:"blocks_pruned_zonemap"`
	BlocksPrunedCache   int64   `json:"blocks_pruned_cache"`
	// CPUMicros and AllocsPerQuery come from the attribution probe: one
	// SQL execution of the case's probe query after the timing loop, read
	// back from pc.query_log, so the recording tracks the resource
	// trajectory (attributed CPU, allocation count) and not just wall time.
	CPUMicros      int64 `json:"cpu_us"`
	AllocsPerQuery int64 `json:"allocs_per_query"`
}

// microBenchDB builds the clustered single-table database the scan
// micro-benchmarks share (same shape as bench_test.go's benchDB).
func microBenchDB(rows int, opts ...predcache.Option) (*predcache.DB, error) {
	db := predcache.Open(opts...)
	schema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "grp", Type: predcache.String},
		{Name: "val", Type: predcache.Float64},
	}
	if err := db.CreateTable("t", schema); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(1))
	batch := predcache.NewBatch(schema)
	for i := 0; i < rows; i++ {
		batch.Cols[0].Ints = append(batch.Cols[0].Ints, int64(i))
		batch.Cols[1].Strings = append(batch.Cols[1].Strings, fmt.Sprintf("g%02d", (i/4000)%25))
		batch.Cols[2].Floats = append(batch.Cols[2].Floats, float64(r.Intn(10000))/100)
	}
	batch.N = rows
	if err := db.Insert("t", batch); err != nil {
		return nil, err
	}
	return db, nil
}

const microScanQuery = "select count(*) as n from t where grp = 'g07' and val > 50"

// microPointQuery is a highly selective warm-hit probe: the cached candidate
// ranges cover a handful of rows, so partial decode dominates the win.
const microPointQuery = "select id, val from t where id = 123456"

// microCase is one named scan micro-benchmark.
type microCase struct {
	name string
	// setup returns the per-iteration body plus the db used (for the
	// rows-scanned probe).
	setup func() (func() error, *predcache.DB, error)
	// probe is the SQL statement used to sample per-query attribution
	// (cpu_us, allocs) from pc.query_log. The timed body runs a hand-built
	// plan, which intentionally records nothing — so attribution needs one
	// SQL execution through the full query path. Empty means no probe.
	probe string
}

func microCases() []microCase {
	const rows = 400000
	return []microCase{
		{name: "ScanCold", probe: microScanQuery, setup: func() (func() error, *predcache.DB, error) {
			db, err := microBenchDB(rows)
			if err != nil {
				return nil, nil, err
			}
			plan, err := db.Plan(microScanQuery)
			if err != nil {
				return nil, nil, err
			}
			return func() error {
				db.PredicateCache().Clear()
				_, err := db.Run(plan)
				return err
			}, db, nil
		}},
		{name: "ScanWarm", probe: microScanQuery, setup: func() (func() error, *predcache.DB, error) {
			db, err := microBenchDB(rows)
			if err != nil {
				return nil, nil, err
			}
			plan, err := db.Plan(microScanQuery)
			if err != nil {
				return nil, nil, err
			}
			if _, err := db.Run(plan); err != nil {
				return nil, nil, err
			}
			return func() error {
				_, err := db.Run(plan)
				return err
			}, db, nil
		}},
		{name: "ScanWarmPoint", probe: microPointQuery, setup: func() (func() error, *predcache.DB, error) {
			db, err := microBenchDB(rows)
			if err != nil {
				return nil, nil, err
			}
			plan, err := db.Plan(microPointQuery)
			if err != nil {
				return nil, nil, err
			}
			if _, err := db.Run(plan); err != nil {
				return nil, nil, err
			}
			return func() error {
				_, err := db.Run(plan)
				return err
			}, db, nil
		}},
		{name: "ScanNoCache", probe: microScanQuery, setup: func() (func() error, *predcache.DB, error) {
			db, err := microBenchDB(rows, predcache.WithoutPredicateCache())
			if err != nil {
				return nil, nil, err
			}
			plan, err := db.Plan(microScanQuery)
			if err != nil {
				return nil, nil, err
			}
			return func() error {
				_, err := db.Run(plan)
				return err
			}, db, nil
		}},
		{name: "Table4TPCHSkewed", setup: func() (func() error, *predcache.DB, error) {
			cfg := FastConfig()
			return func() error {
				return NewRunner(cfg, io.Discard).Run("table4")
			}, nil, nil
		}},
	}
}

// RunMicro executes the scan micro-benchmark suite with testing.Benchmark
// and returns the measurements. Failures surface as an error rather than
// aborting, so a broken case does not lose the rest of the recording.
func RunMicro(progress io.Writer) ([]MicroResult, error) {
	var out []MicroResult
	for _, mc := range microCases() {
		body, db, err := mc.setup()
		if err != nil {
			return nil, fmt.Errorf("bench: %s setup: %w", mc.name, err)
		}
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := body(); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("bench: %s: %w", mc.name, benchErr)
		}
		res := MicroResult{
			Name:        mc.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if db != nil {
			// One extra execution outside the timing loop to sample the
			// per-query scan counters.
			if err := body(); err == nil {
				s := db.LastQueryStats()
				res.RowsScanned = s.RowsScanned
				res.BlocksAccessed = s.BlocksAccessed
				res.BlocksPrunedZoneMap = s.BlocksSkipped
				res.BlocksPrunedCache = s.BlocksPrunedCache
				if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
					res.CacheHitRate = float64(s.CacheHits) / float64(lookups)
				}
			}
			if mc.probe != "" {
				// One attributed execution through the SQL path: the timed
				// body uses db.Run, which skips per-query attribution, so
				// cpu_us/allocs come from the query log of this probe.
				if _, err := db.Query(mc.probe); err == nil {
					if log := db.QueryLog(); len(log) > 0 {
						rec := log[len(log)-1]
						res.CPUMicros = rec.CPUMicros
						res.AllocsPerQuery = rec.AllocObjects
					}
				}
			}
		}
		out = append(out, res)
		if progress != nil {
			fmt.Fprintf(progress, "%-20s %12.0f ns/op %8d allocs/op %10d B/op\n",
				res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		}
	}
	return out, nil
}

// WriteMicroJSON renders results as a JSON array with one element per line,
// a shape both encoding/json and line-oriented shell tooling can read.
func WriteMicroJSON(w io.Writer, results []MicroResult) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, r := range results {
		line, err := json.Marshal(r)
		if err != nil {
			return err
		}
		sep := ","
		if i == len(results)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s%s\n", line, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// allocSlackRatio and allocSlackAbs bound how much allocs_per_op (and the
// attributed allocs_per_query) may grow before a compare is treated as a
// regression: new > old*1.10 + 16 fails.
const (
	allocSlackRatio = 1.10
	allocSlackAbs   = 16
)

// allocRegressed reports whether a new allocation count exceeds the old one
// beyond slack. Zero/absent old values never fail (new benchmarks, or
// recordings made before the field existed).
func allocRegressed(old, new int64) bool {
	if old <= 0 {
		return false
	}
	return float64(new) > float64(old)*allocSlackRatio+allocSlackAbs
}

// CompareMicroJSON reads two recordings produced by WriteMicroJSON and
// renders a per-benchmark delta table (new vs old). When any benchmark's
// allocation count regresses beyond slack, the rendered report is still
// returned alongside a non-nil error naming the offenders, so callers can
// print the table and fail.
func CompareMicroJSON(oldData, newData []byte) (string, error) {
	var oldRes, newRes []MicroResult
	if err := json.Unmarshal(oldData, &oldRes); err != nil {
		return "", fmt.Errorf("bench: old recording: %w", err)
	}
	if err := json.Unmarshal(newData, &newRes); err != nil {
		return "", fmt.Errorf("bench: new recording: %w", err)
	}
	oldBy := make(map[string]MicroResult, len(oldRes))
	for _, r := range oldRes {
		oldBy[r.Name] = r
	}
	var names []string
	newBy := make(map[string]MicroResult, len(newRes))
	for _, r := range newRes {
		newBy[r.Name] = r
		names = append(names, r.Name)
	}
	sort.Strings(names)
	var regressions []string
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %14s %14s %8s %18s %16s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "allocs old->new", "cpu_us old->new")
	for _, name := range names {
		n := newBy[name]
		o, ok := oldBy[name]
		if !ok {
			fmt.Fprintf(&b, "%-20s %14s %14.0f %8s %9s->%-7d %7s->%d\n",
				name, "-", n.NsPerOp, "new", "-", n.AllocsPerOp, "-", n.CPUMicros)
			continue
		}
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		fmt.Fprintf(&b, "%-20s %14.0f %14.0f %+7.1f%% %9d->%-7d %7d->%d\n",
			name, o.NsPerOp, n.NsPerOp, delta, o.AllocsPerOp, n.AllocsPerOp, o.CPUMicros, n.CPUMicros)
		if allocRegressed(o.AllocsPerOp, n.AllocsPerOp) {
			regressions = append(regressions, fmt.Sprintf(
				"%s allocs/op %d->%d", name, o.AllocsPerOp, n.AllocsPerOp))
		}
		if allocRegressed(o.AllocsPerQuery, n.AllocsPerQuery) {
			regressions = append(regressions, fmt.Sprintf(
				"%s allocs/query %d->%d", name, o.AllocsPerQuery, n.AllocsPerQuery))
		}
	}
	if len(regressions) > 0 {
		return b.String(), fmt.Errorf("bench: allocation regression: %s", strings.Join(regressions, "; "))
	}
	return b.String(), nil
}
