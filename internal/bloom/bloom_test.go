package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(10000, 0.01)
	r := rand.New(rand.NewSource(1))
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = r.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
	if f.Inserted() != len(keys) {
		t.Fatalf("inserted %d", f.Inserted())
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(50000, 0.01)
	r := rand.New(rand.NewSource(2))
	present := make(map[uint64]bool, 50000)
	for i := 0; i < 50000; i++ {
		k := r.Uint64()
		present[k] = true
		f.Add(k)
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		k := r.Uint64()
		if present[k] {
			continue
		}
		if f.MayContain(k) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestSignedKeys(t *testing.T) {
	f := New(100, 0.01)
	f.AddInt(-42)
	f.AddInt(0)
	if !f.MayContainInt(-42) || !f.MayContainInt(0) {
		t.Fatal("false negative on signed keys")
	}
}

func TestDegenerateSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		f := New(n, 0.01)
		f.Add(7)
		if !f.MayContain(7) {
			t.Fatalf("n=%d: false negative", n)
		}
	}
	f := New(100, 2.0) // bad rate falls back
	f.Add(1)
	if !f.MayContain(1) {
		t.Fatal("bad-rate filter broken")
	}
	if f.MemBytes() <= 0 {
		t.Fatal("MemBytes")
	}
}

func TestNoFalseNegativesQuick(t *testing.T) {
	f := func(keys []uint64) bool {
		fl := New(len(keys), 0.01)
		for _, k := range keys {
			fl.Add(k)
		}
		for _, k := range keys {
			if !fl.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
