// Package bloom implements the blocked Bloom filter Redshift-style semi-join
// filters are built from (§4.4): the build side of a hash join inserts its
// join keys, and the probe-side table scan tests membership to eliminate
// rows without a join partner early.
package bloom

import "math"

// Filter is a blocked Bloom filter over 64-bit keys. Each key sets k bits
// inside one 64-byte block (8 words), giving cache-friendly probes. The zero
// value is not usable; call New.
type Filter struct {
	words     []uint64 // numBlocks * 8
	numBlocks uint64
	k         int
	inserted  int
}

const wordsPerBlock = 8

// New creates a filter sized for n keys at the given false-positive rate.
func New(n int, fpRate float64) *Filter {
	if n < 1 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	// Standard sizing; blocked filters need slightly more bits for the same
	// rate, so pad by 20%.
	bits := float64(n) * math.Log(fpRate) / (math.Log(2) * math.Log(2)) * -1.2
	numBlocks := uint64(math.Ceil(bits / (64 * wordsPerBlock)))
	if numBlocks == 0 {
		numBlocks = 1
	}
	k := int(math.Round(bits / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return &Filter{
		words:     make([]uint64, numBlocks*wordsPerBlock),
		numBlocks: numBlocks,
		k:         k,
	}
}

// mix64 is SplitMix64's finalizer: a fast, well-distributed 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a key.
func (f *Filter) Add(key uint64) {
	h := mix64(key)
	block := (h % f.numBlocks) * wordsPerBlock
	// Derive k bit positions within the 512-bit block from the upper hash
	// bits; each position needs 9 bits.
	g := mix64(h)
	for i := 0; i < f.k; i++ {
		pos := g & 511
		g >>= 9
		if g == 0 {
			g = mix64(h + uint64(i) + 1)
		}
		f.words[block+pos>>6] |= 1 << (pos & 63)
	}
	f.inserted++
}

// MayContain reports whether key may have been inserted. False negatives
// never occur.
func (f *Filter) MayContain(key uint64) bool {
	h := mix64(key)
	block := (h % f.numBlocks) * wordsPerBlock
	g := mix64(h)
	for i := 0; i < f.k; i++ {
		pos := g & 511
		g >>= 9
		if g == 0 {
			g = mix64(h + uint64(i) + 1)
		}
		if f.words[block+pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

// AddInt inserts a signed key.
func (f *Filter) AddInt(key int64) { f.Add(uint64(key)) }

// MayContainInt tests a signed key.
func (f *Filter) MayContainInt(key int64) bool { return f.MayContain(uint64(key)) }

// Inserted returns the number of Add calls.
func (f *Filter) Inserted() int { return f.inserted }

// MemBytes returns the filter's payload size in bytes.
func (f *Filter) MemBytes() int { return len(f.words) * 8 }
