package storage

// Slice is one data slice of a table: a horizontal partition with its own
// per-column block chains and MVCC metadata. The leader assigns slices to
// compute workers (goroutines here); the predicate cache keeps one entry per
// (predicate, slice), mirroring §4.2.1.
type Slice struct {
	cols []*ColumnStore

	// MVCC row headers (§4.3.2): creation and deletion transaction ids.
	// deleteXID == 0 means the row is live.
	insertXID []uint64
	deleteXID []uint64

	numRows int
}

func newSlice(schema Schema, dicts []*Dict) *Slice {
	s := &Slice{cols: make([]*ColumnStore, len(schema))}
	for i, def := range schema {
		s.cols[i] = newColumnStore(def.Type, dicts[i])
	}
	return s
}

// NumRows returns the number of physical rows (live and deleted).
func (s *Slice) NumRows() int { return s.numRows }

// NumBlocks returns the number of row blocks in the slice.
func (s *Slice) NumBlocks() int { return (s.numRows + BlockSize - 1) / BlockSize }

// Column returns the column store at index i.
func (s *Slice) Column(i int) *ColumnStore { return s.cols[i] }

// InsertXIDs exposes the per-row creation timestamps (read-only). The
// returned slice aliases live MVCC state that appends grow and Vacuum
// replaces; read it only while holding the table's scan lock and never
// retain it across the scan.
//
// pclint:recycled
func (s *Slice) InsertXIDs() []uint64 { return s.insertXID }

// DeleteXIDs exposes the per-row deletion timestamps (read-only). Same
// aliasing rules as InsertXIDs.
//
// pclint:recycled
func (s *Slice) DeleteXIDs() []uint64 { return s.deleteXID }

// Visible reports whether row is visible to a snapshot: the row was created
// at or before the snapshot and not deleted at or before it.
func (s *Slice) Visible(row int, snapshot uint64) bool {
	if s.insertXID[row] > snapshot {
		return false
	}
	d := s.deleteXID[row]
	return d == 0 || d > snapshot
}

// HasDeletionsIn reports whether any row in [start, end) carries a deletion
// timestamp; scans use it to fast-path fully-live blocks.
func (s *Slice) HasDeletionsIn(start, end int) bool {
	for i := start; i < end; i++ {
		if s.deleteXID[i] != 0 {
			return true
		}
	}
	return false
}

// appendRow appends one row given integer-representation values (dict codes
// for strings) and raw floats; vals[i] is used for non-float columns and
// fvals[i] for float columns.
func (s *Slice) appendRow(vals []int64, fvals []float64, xid uint64) {
	for i, c := range s.cols {
		if c.Typ == Float64 {
			c.appendFloat(fvals[i])
		} else {
			c.appendInt(vals[i])
		}
	}
	s.insertXID = append(s.insertXID, xid)
	s.deleteXID = append(s.deleteXID, 0)
	s.numRows++
	assertMVCCHeaders(s, "Slice.appendRow")
}

// deleteRow marks a row deleted at xid. Idempotent for already-deleted rows
// (keeps the earliest deletion).
func (s *Slice) deleteRow(row int, xid uint64) {
	if s.deleteXID[row] == 0 {
		s.deleteXID[row] = xid
	}
	assertMVCCRow(s.insertXID[row], s.deleteXID[row], row, "Slice.deleteRow")
}

// MemBytes approximates the slice's memory footprint (blocks + MVCC
// headers), excluding shared dictionaries.
func (s *Slice) MemBytes() int {
	n := len(s.insertXID)*16 + 48
	for _, c := range s.cols {
		n += c.MemBytes()
	}
	return n
}
