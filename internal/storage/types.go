// Package storage implements the columnar storage substrate the predicate
// cache is built on: typed columns split into fixed-size compressed blocks
// with per-block zone maps, tables partitioned into data slices, MVCC row
// visibility, an append-only insert buffer, and a vacuum process that
// reclaims deleted rows and re-sorts tables.
//
// The layout mirrors the architecture described in §4.2 of the paper
// (Redshift's columnar storage engine): relations are split into data
// slices, every slice stores per-column compressed blocks of about one
// thousand rows, and each block carries min-max bounds used for block
// elimination during scans.
package storage

import "fmt"

// BlockSize is the number of rows per compressed block. The paper's
// prototype uses blocks of "typically between 1000 and 16000 records"
// (§4.1.2); we use the lower bound, which is also the granularity the
// evaluation uses ("1,000 rows per block", §5.1).
const BlockSize = 1000

// ColumnType enumerates the supported column types. The analytic workloads
// the paper evaluates (TPC-H, TPC-DS, SSB) only require fixed-width numeric
// types, dates, and dictionary-encoded strings.
type ColumnType uint8

const (
	// Int64 is a 64-bit signed integer column.
	Int64 ColumnType = iota
	// Float64 is a 64-bit floating point column.
	Float64
	// Date is a day-granularity date stored as days since 1970-01-01.
	Date
	// String is a dictionary-encoded string column; codes are assigned in
	// first-seen order, so only equality predicates can use zone maps.
	String
	// Bool is a boolean column stored as 0/1 integers.
	Bool
)

// String returns the SQL-ish name of the type.
func (t ColumnType) String() string {
	switch t {
	case Int64:
		return "bigint"
	case Float64:
		return "double"
	case Date:
		return "date"
	case String:
		return "varchar"
	case Bool:
		return "boolean"
	}
	return fmt.Sprintf("ColumnType(%d)", uint8(t))
}

// IsInt reports whether values of this type are stored in the integer
// (int64) representation. Dates, booleans and dictionary codes all are.
func (t ColumnType) IsInt() bool { return t != Float64 }

// ColumnDef describes one column of a table schema.
type ColumnDef struct {
	Name string
	Type ColumnType
}

// Schema is an ordered list of column definitions.
type Schema []ColumnDef

// ColumnIndex returns the position of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// RowRange is a half-open range [Start, End) of row numbers within one data
// slice. Qualifying tuples of a scan are represented as sorted,
// non-overlapping lists of row ranges — the same representation Redshift's
// vectorized scan produces and the predicate cache stores.
type RowRange struct {
	Start int
	End   int
}

// Len returns the number of rows covered by the range.
func (r RowRange) Len() int { return r.End - r.Start }

// RangesRowCount returns the total number of rows covered by ranges.
func RangesRowCount(ranges []RowRange) int {
	n := 0
	for _, r := range ranges {
		n += r.Len()
	}
	return n
}

// ValidateRanges checks that ranges are sorted, non-empty, non-overlapping
// and within [0, numRows). It returns a descriptive error otherwise; used by
// tests and by the cache when adopting externally produced ranges.
func ValidateRanges(ranges []RowRange, numRows int) error {
	prev := -1
	for i, r := range ranges {
		if r.Start < 0 || r.End > numRows || r.Start >= r.End {
			return fmt.Errorf("storage: range %d [%d,%d) invalid for %d rows", i, r.Start, r.End, numRows)
		}
		if r.Start < prev {
			return fmt.Errorf("storage: range %d [%d,%d) overlaps or is unsorted (prev end %d)", i, r.Start, r.End, prev)
		}
		prev = r.End
	}
	return nil
}

// DateFromYMD converts a calendar date to the day-number representation used
// by Date columns (days since 1970-01-01, proleptic Gregorian).
func DateFromYMD(year, month, day int) int64 {
	// Civil-days algorithm (Howard Hinnant's days_from_civil), no time package
	// needed and exact for the whole Gregorian range.
	y := int64(year)
	m := int64(month)
	d := int64(day)
	if m <= 2 {
		y--
	}
	var era int64
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = m - 3
	} else {
		mp = m + 9
	}
	doy := (153*mp+2)/5 + d - 1            // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468
}

// YMDFromDate is the inverse of DateFromYMD.
func YMDFromDate(days int64) (year, month, day int) {
	z := days + 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d := doy - (153*mp+2)/5 + 1
	var m int64
	if mp < 10 {
		m = mp + 3
	} else {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return int(y), int(m), int(d)
}

// FormatDate renders a day number as YYYY-MM-DD.
func FormatDate(days int64) string {
	y, m, d := YMDFromDate(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// ParseDate parses YYYY-MM-DD into a day number.
func ParseDate(s string) (int64, error) {
	var y, m, d int
	if _, err := fmt.Sscanf(s, "%d-%d-%d", &y, &m, &d); err != nil {
		return 0, fmt.Errorf("storage: bad date %q: %w", s, err)
	}
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("storage: bad date %q", s)
	}
	return DateFromYMD(y, m, d), nil
}
