package storage

// Epoch-checked DML. DeleteWhere/UpdateWhere in the facade run in two steps:
// match rows under the read lock, then mutate under the write lock. Between
// the two a Vacuum may rebuild the slices, renumbering physical rows — so
// the captured row numbers would delete arbitrary other rows. The AtEpoch
// variants take the layout epoch observed at match time and refuse to mutate
// when it no longer matches, letting the caller re-match and retry. When the
// optimistic retries keep losing to back-to-back vacuums, LockLayout turns
// the final attempt pessimistic.

// LockLayout blocks layout changes (Vacuum) until the returned release
// function is called. With the gate held the layout epoch cannot change, so
// a match/mutate pair is guaranteed to observe the same epoch. Scans and
// appends are unaffected — the gate is not the table lock. Callers must not
// invoke Vacuum while holding it.
func (t *Table) LockLayout() func() {
	t.layoutGate.Lock()
	return t.layoutGate.Unlock
}

// RLockScanEpoch takes the scan read lock and returns the current layout
// epoch along with the release function. Capturing the epoch under the same
// lock acquisition as the scan (rather than calling LayoutEpoch separately)
// closes the window where a vacuum could run between the two.
func (t *Table) RLockScanEpoch() (func(), uint64) {
	t.mu.RLock()
	return t.mu.RUnlock, t.layoutEpoch
}

// DeleteRowsAtEpoch marks the captured rows (indexed by slice) deleted at
// xid, provided the layout epoch still equals epoch. It returns the number
// of rows that transitioned live→deleted and whether the epoch matched;
// on a mismatch nothing is modified. Already-deleted rows keep their
// original delete xid and are not counted.
func (t *Table) DeleteRowsAtEpoch(rows [][]int, xid, epoch uint64) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.layoutEpoch != epoch {
		return 0, false
	}
	deleted := 0
	for si, rs := range rows {
		if len(rs) == 0 {
			continue
		}
		s := t.slices[si]
		assertRowsInSlice(rs, s.numRows, "Table.DeleteRowsAtEpoch")
		for _, r := range rs {
			if s.deleteXID[r] == 0 {
				deleted++
			}
			s.deleteRow(r, xid)
		}
	}
	t.version++
	if deleted > 0 {
		t.deleteOps++
	}
	return deleted, true
}

// UpdateRowsAtEpoch implements the mutation half of an out-of-place update
// (§4.3.3) atomically under one write-lock acquisition: append the updated
// copies in nb, then mark the original rows deleted, all at the same xid —
// provided the layout epoch still equals epoch. The append runs first and
// validates the batch before touching any row, so a malformed batch leaves
// the table unchanged (no rows are lost to a failed append). Returns whether
// the epoch matched; on a mismatch nothing is modified.
func (t *Table) UpdateRowsAtEpoch(rows [][]int, nb *Batch, xid, epoch uint64) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.layoutEpoch != epoch {
		return false, nil
	}
	if err := t.appendLocked(nb, xid); err != nil {
		return true, err
	}
	any := false
	for si, rs := range rows {
		if len(rs) == 0 {
			continue
		}
		any = true
		s := t.slices[si]
		assertRowsInSlice(rs, s.numRows, "Table.UpdateRowsAtEpoch")
		for _, r := range rs {
			s.deleteRow(r, xid)
		}
	}
	if any {
		t.deleteOps++
	}
	return true, nil
}
