//go:build pcdebug

package storage

import "fmt"

// AssertionsEnabled reports whether the pcdebug invariant checks are compiled
// in (build or test with -tags pcdebug). The release build compiles the
// assertion functions to empty bodies, so call sites cost nothing.
const AssertionsEnabled = true

// AssertRowRanges panics unless ranges are ascending, non-overlapping, and
// within [0, limit). Adjacent ranges (Start == previous End) are allowed.
// A negative limit skips the upper-bound check. ctx names the call site for
// the panic message.
func AssertRowRanges(ranges []RowRange, limit int, ctx string) {
	prevEnd := 0
	for i, r := range ranges {
		if r.Start < 0 || r.End <= r.Start {
			panic(fmt.Sprintf("pcdebug: %s: range %d = [%d,%d) is empty or negative", ctx, i, r.Start, r.End))
		}
		if i > 0 && r.Start < prevEnd {
			panic(fmt.Sprintf("pcdebug: %s: range %d = [%d,%d) overlaps previous range ending at %d", ctx, i, r.Start, r.End, prevEnd))
		}
		if limit >= 0 && r.End > limit {
			panic(fmt.Sprintf("pcdebug: %s: range %d = [%d,%d) exceeds row bound %d", ctx, i, r.Start, r.End, limit))
		}
		prevEnd = r.End
	}
}

// assertZoneMapInt panics if an integer zone map has min > max.
//
// pclint:allowalloc allocates only on the panic path of a violated
// invariant; the healthy fast path is a single comparison.
func assertZoneMapInt(min, max int64, ctx string) {
	if min > max {
		panic(fmt.Sprintf("pcdebug: %s: zone map min %d > max %d", ctx, min, max))
	}
}

// assertZoneMapFloat panics if a float zone map has min > max.
//
// pclint:allowalloc allocates only on the panic path of a violated
// invariant, same as assertZoneMapInt.
func assertZoneMapFloat(min, max float64, ctx string) {
	if min > max {
		panic(fmt.Sprintf("pcdebug: %s: zone map min %g > max %g", ctx, min, max))
	}
}

// assertMVCCRow panics unless a row's visibility interval is monotone: the
// deletion xid is 0 (live) or at least the insertion xid.
func assertMVCCRow(ins, del uint64, row int, ctx string) {
	if del != 0 && del < ins {
		panic(fmt.Sprintf("pcdebug: %s: row %d deleted at xid %d before insertion at xid %d", ctx, row, del, ins))
	}
}

// assertMVCCHeaders panics unless the slice's MVCC header arrays match its
// row count.
func assertMVCCHeaders(s *Slice, ctx string) {
	if len(s.insertXID) != s.numRows || len(s.deleteXID) != s.numRows {
		panic(fmt.Sprintf("pcdebug: %s: MVCC headers out of sync: %d insert / %d delete xids for %d rows",
			ctx, len(s.insertXID), len(s.deleteXID), s.numRows))
	}
}

// assertSliceMVCC runs the per-row monotonicity check over a whole slice;
// used after bulk rebuilds (Vacuum), where the O(rows) pass is amortized.
func assertSliceMVCC(s *Slice, ctx string) {
	assertMVCCHeaders(s, ctx)
	for row := 0; row < s.numRows; row++ {
		assertMVCCRow(s.insertXID[row], s.deleteXID[row], row, ctx)
	}
}

// assertRowsInSlice panics unless every captured physical row number is
// within the slice's current row count. Epoch-checked DML relies on this: a
// matching layout epoch guarantees captured row numbers still address the
// rows they matched.
func assertRowsInSlice(rows []int, numRows int, ctx string) {
	for _, r := range rows {
		if r < 0 || r >= numRows {
			panic(fmt.Sprintf("pcdebug: %s: row %d out of bounds for slice with %d rows", ctx, r, numRows))
		}
	}
}
