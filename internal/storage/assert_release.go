//go:build !pcdebug

package storage

// AssertionsEnabled reports whether the pcdebug invariant checks are compiled
// in; in the release build every assertion below is an empty function the
// compiler eliminates.
const AssertionsEnabled = false

// AssertRowRanges is a no-op without the pcdebug build tag.
func AssertRowRanges(ranges []RowRange, limit int, ctx string) {}

func assertZoneMapInt(min, max int64, ctx string)           {}
func assertZoneMapFloat(min, max float64, ctx string)       {}
func assertMVCCRow(ins, del uint64, row int, ctx string)    {}
func assertMVCCHeaders(s *Slice, ctx string)                {}
func assertSliceMVCC(s *Slice, ctx string)                  {}
func assertRowsInSlice(rows []int, numRows int, ctx string) {}
