package storage

import (
	"fmt"
	"math/rand"
	"testing"
)

func testSchema() Schema {
	return Schema{
		{"id", Int64},
		{"price", Float64},
		{"name", String},
		{"day", Date},
	}
}

func fillBatch(n int, seed int64) *Batch {
	r := rand.New(rand.NewSource(seed))
	b := NewBatch(testSchema())
	for i := 0; i < n; i++ {
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(i))
		b.Cols[1].Floats = append(b.Cols[1].Floats, float64(r.Intn(1000))/10)
		b.Cols[2].Strings = append(b.Cols[2].Strings, fmt.Sprintf("name-%d", r.Intn(50)))
		b.Cols[3].Ints = append(b.Cols[3].Ints, int64(r.Intn(3650)))
	}
	b.N = n
	return b
}

func TestTableAppendAndRead(t *testing.T) {
	tbl, err := NewTable("t", testSchema(), 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5500
	if err := tbl.Append(fillBatch(n, 1), 1); err != nil {
		t.Fatal(err)
	}
	if got := tbl.NumRows(); got != n {
		t.Fatalf("NumRows=%d want %d", got, n)
	}
	// Round-robin chunking: 6 chunks of <=1000 over 4 slices.
	counts := 0
	for i := 0; i < tbl.NumSlices(); i++ {
		counts += tbl.Slice(i).NumRows()
	}
	if counts != n {
		t.Fatalf("slice rows sum %d want %d", counts, n)
	}

	// All ids present exactly once across slices.
	seen := make(map[int64]int)
	scratch := make([]int64, BlockSize)
	for i := 0; i < tbl.NumSlices(); i++ {
		s := tbl.Slice(i)
		col := s.Column(0)
		for blk := 0; blk*BlockSize < s.NumRows(); blk++ {
			cnt := col.ReadIntBlock(blk, scratch)
			for j := 0; j < cnt; j++ {
				seen[scratch[j]]++
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("distinct ids %d want %d", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("id %d appears %d times", id, c)
		}
	}
}

func TestTableStringDictionary(t *testing.T) {
	tbl, _ := NewTable("t", testSchema(), 2)
	if err := tbl.Append(fillBatch(100, 2), 1); err != nil {
		t.Fatal(err)
	}
	d := tbl.Dict(2)
	if d == nil {
		t.Fatal("no dict for string column")
	}
	if d.Len() == 0 || d.Len() > 50 {
		t.Fatalf("dict size %d", d.Len())
	}
	code, ok := d.Lookup(d.Value(0))
	if !ok || code != 0 {
		t.Fatal("dict lookup broken")
	}
	if _, ok := d.Lookup("never-seen"); ok {
		t.Fatal("phantom dict entry")
	}
}

func TestTableSchemaValidation(t *testing.T) {
	if _, err := NewTable("t", Schema{{"a", Int64}, {"a", Int64}}, 1); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := NewTable("t", testSchema(), 0); err == nil {
		t.Fatal("zero slices accepted")
	}
	if _, err := NewTable("t", testSchema(), 1, "nope"); err == nil {
		t.Fatal("bad sort key accepted")
	}
	tbl, _ := NewTable("t", testSchema(), 1)
	bad := NewBatch(Schema{{"a", Int64}})
	if err := tbl.Append(bad, 1); err == nil {
		t.Fatal("column count mismatch accepted")
	}
	b := NewBatch(testSchema())
	b.N = 3 // vectors empty -> length mismatch
	if err := tbl.Append(b, 1); err == nil {
		t.Fatal("vector length mismatch accepted")
	}
}

func TestMVCCVisibility(t *testing.T) {
	tbl, _ := NewTable("t", testSchema(), 1)
	if err := tbl.Append(fillBatch(10, 3), 5); err != nil {
		t.Fatal(err)
	}
	s := tbl.Slice(0)
	if s.Visible(0, 4) {
		t.Fatal("row visible before insert xid")
	}
	if !s.Visible(0, 5) || !s.Visible(0, 100) {
		t.Fatal("row invisible after insert xid")
	}
	tbl.DeleteRows(0, []int{3}, 7)
	if !s.Visible(3, 6) {
		t.Fatal("deleted row invisible before delete xid")
	}
	if s.Visible(3, 7) || s.Visible(3, 100) {
		t.Fatal("deleted row visible after delete xid")
	}
	if !s.HasDeletionsIn(0, 10) {
		t.Fatal("HasDeletionsIn missed the delete")
	}
	if s.HasDeletionsIn(4, 10) {
		t.Fatal("HasDeletionsIn false positive")
	}
	// Deleting again keeps the earliest xid.
	tbl.DeleteRows(0, []int{3}, 9)
	if s.DeleteXIDs()[3] != 7 {
		t.Fatal("re-delete overwrote xid")
	}
}

func TestTableVersioning(t *testing.T) {
	tbl, _ := NewTable("t", testSchema(), 1)
	v0 := tbl.Version()
	if err := tbl.Append(fillBatch(5, 4), 1); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() == v0 {
		t.Fatal("append did not bump version")
	}
	v1 := tbl.Version()
	tbl.DeleteRows(0, []int{0}, 2)
	if tbl.Version() == v1 {
		t.Fatal("delete did not bump version")
	}
	e0 := tbl.LayoutEpoch()
	tbl.BumpVersion()
	if tbl.LayoutEpoch() != e0 {
		t.Fatal("BumpVersion must not change layout epoch")
	}
}

func TestVacuumReclaimsAndBumpsEpoch(t *testing.T) {
	tbl, _ := NewTable("t", testSchema(), 2)
	if err := tbl.Append(fillBatch(2500, 5), 1); err != nil {
		t.Fatal(err)
	}
	tbl.DeleteRows(0, []int{0, 1, 2}, 2)
	tbl.DeleteRows(1, []int{5}, 3)
	e0 := tbl.LayoutEpoch()
	tbl.Vacuum(10)
	if tbl.LayoutEpoch() == e0 {
		t.Fatal("vacuum did not bump layout epoch")
	}
	if got := tbl.NumRows(); got != 2500-4 {
		t.Fatalf("after vacuum NumRows=%d want %d", got, 2496)
	}
	// No physical rows should carry deletion marks.
	for i := 0; i < tbl.NumSlices(); i++ {
		s := tbl.Slice(i)
		if s.HasDeletionsIn(0, s.NumRows()) {
			t.Fatal("vacuum left deletion marks")
		}
	}
}

func TestVacuumKeepsRecentDeletes(t *testing.T) {
	tbl, _ := NewTable("t", testSchema(), 1)
	if err := tbl.Append(fillBatch(100, 6), 1); err != nil {
		t.Fatal(err)
	}
	tbl.DeleteRows(0, []int{7}, 50)
	tbl.Vacuum(10) // horizon below the delete xid: row must survive
	if got := tbl.NumRows(); got != 100 {
		t.Fatalf("NumRows=%d want 100", got)
	}
	s := tbl.Slice(0)
	if !s.HasDeletionsIn(0, 100) {
		t.Fatal("recent delete mark lost by vacuum")
	}
}

func TestSortedLoadAndVacuumResort(t *testing.T) {
	tbl, _ := NewTable("t", testSchema(), 2, "day")
	b := fillBatch(3000, 7)
	if err := tbl.SortedLoad(b, 1); err != nil {
		t.Fatal(err)
	}
	// Appended rows go to the insert buffer unsorted; vacuum merges them.
	if err := tbl.Append(fillBatch(500, 8), 2); err != nil {
		t.Fatal(err)
	}
	tbl.Vacuum(100)

	// After vacuum the day column must be globally sorted in slice-chunk
	// order: chunks are distributed round-robin from a sorted stream, so
	// within each slice the values must be non-decreasing.
	scratch := make([]int64, BlockSize)
	for i := 0; i < tbl.NumSlices(); i++ {
		s := tbl.Slice(i)
		col := s.Column(3)
		prev := int64(-1 << 62)
		for blk := 0; blk*BlockSize < s.NumRows(); blk++ {
			cnt := col.ReadIntBlock(blk, scratch)
			for j := 0; j < cnt; j++ {
				if scratch[j] < prev {
					t.Fatalf("slice %d not sorted after vacuum", i)
				}
				prev = scratch[j]
			}
		}
	}
	if tbl.NumRows() != 3500 {
		t.Fatalf("rows %d want 3500", tbl.NumRows())
	}
}

func TestSortedLoadRequiresEmptyTable(t *testing.T) {
	tbl, _ := NewTable("t", testSchema(), 1, "id")
	if err := tbl.SortedLoad(fillBatch(10, 9), 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SortedLoad(fillBatch(10, 10), 2); err == nil {
		t.Fatal("SortedLoad on non-empty table accepted")
	}
}

func TestZoneMapBounds(t *testing.T) {
	tbl, _ := NewTable("t", testSchema(), 1)
	b := NewBatch(testSchema())
	for i := 0; i < 2000; i++ {
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(i))
		b.Cols[1].Floats = append(b.Cols[1].Floats, float64(i)/2)
		b.Cols[2].Strings = append(b.Cols[2].Strings, "x")
		b.Cols[3].Ints = append(b.Cols[3].Ints, 0)
	}
	b.N = 2000
	if err := tbl.Append(b, 1); err != nil {
		t.Fatal(err)
	}
	col := tbl.Slice(0).Column(0)
	min, max, ok := col.IntBounds(0)
	if !ok || min != 0 || max != 999 {
		t.Fatalf("block 0 bounds [%d,%d] ok=%v", min, max, ok)
	}
	min, max, ok = col.IntBounds(1)
	if !ok || min != 1000 || max != 1999 {
		t.Fatalf("block 1 bounds [%d,%d] ok=%v", min, max, ok)
	}
	fcol := tbl.Slice(0).Column(1)
	fmin, fmax, ok := fcol.FloatBounds(0)
	if !ok || fmin != 0 || fmax != 999.0/2 {
		t.Fatalf("float block 0 bounds [%f,%f]", fmin, fmax)
	}
	if tbl.ZoneMapBytes() == 0 {
		t.Fatal("zone map bytes zero")
	}
}

func TestTailBlockBounds(t *testing.T) {
	tbl, _ := NewTable("t", testSchema(), 1)
	b := fillBatch(150, 11)
	if err := tbl.Append(b, 1); err != nil {
		t.Fatal(err)
	}
	col := tbl.Slice(0).Column(0)
	if col.NumBlocks() != 1 {
		t.Fatalf("blocks=%d want 1 (open tail)", col.NumBlocks())
	}
	min, max, ok := col.IntBounds(0)
	if !ok || min != 0 || max != 149 {
		t.Fatalf("tail bounds [%d,%d]", min, max)
	}
	scratch := make([]int64, BlockSize)
	if n := col.ReadIntBlock(0, scratch); n != 150 {
		t.Fatalf("tail read %d rows", n)
	}
}

func TestPointAccessors(t *testing.T) {
	tbl, _ := NewTable("t", testSchema(), 1)
	if err := tbl.Append(fillBatch(2500, 12), 1); err != nil {
		t.Fatal(err)
	}
	s := tbl.Slice(0)
	iScratch := make([]int64, BlockSize)
	fScratch := make([]float64, BlockSize)
	// Compare point accessors against block reads.
	want := make([]int64, BlockSize)
	col := s.Column(0)
	for blk := 0; blk*BlockSize < s.NumRows(); blk++ {
		n := col.ReadIntBlock(blk, want)
		for j := 0; j < n; j++ {
			if got := col.IntAt(blk*BlockSize+j, iScratch); got != want[j] {
				t.Fatalf("IntAt(%d)=%d want %d", blk*BlockSize+j, got, want[j])
			}
		}
	}
	fcol := s.Column(1)
	fwant := make([]float64, BlockSize)
	for blk := 0; blk*BlockSize < s.NumRows(); blk++ {
		n := fcol.ReadFloatBlock(blk, fwant)
		for j := 0; j < n; j++ {
			if got := fcol.FloatAt(blk*BlockSize+j, fScratch); got != fwant[j] {
				t.Fatalf("FloatAt mismatch")
			}
		}
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	if c.Snapshot() != 0 {
		t.Fatal("fresh catalog snapshot != 0")
	}
	x1 := c.NextXID()
	x2 := c.NextXID()
	if x1 != 1 || x2 != 2 || c.Snapshot() != 2 {
		t.Fatal("xid sequence broken")
	}
	tbl, err := c.CreateTable("a", testSchema(), 2)
	if err != nil || tbl == nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("a", testSchema(), 2); err == nil {
		t.Fatal("duplicate table accepted")
	}
	got, ok := c.Table("a")
	if !ok || got != tbl {
		t.Fatal("lookup failed")
	}
	other, _ := NewTable("b", testSchema(), 1)
	if err := c.RegisterTable(other); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTable(other); err == nil {
		t.Fatal("duplicate register accepted")
	}
	names := c.TableNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names %v", names)
	}
	c.DropTable("a")
	if _, ok := c.Table("a"); ok {
		t.Fatal("drop failed")
	}
}

func TestScanStats(t *testing.T) {
	var a, b ScanStats
	a.RowsScanned.Add(10)
	a.BlocksAccessed.Add(2)
	b.RowsScanned.Add(5)
	b.CacheHits.Add(1)
	a.Add(&b)
	snap := a.Snapshot()
	if snap.RowsScanned != 15 || snap.BlocksAccessed != 2 || snap.CacheHits != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestMemBytes(t *testing.T) {
	tbl, _ := NewTable("t", testSchema(), 1)
	if err := tbl.Append(fillBatch(5000, 13), 1); err != nil {
		t.Fatal(err)
	}
	if tbl.MemBytes() <= 0 {
		t.Fatal("MemBytes zero")
	}
}

func TestAccessorCoverage(t *testing.T) {
	tbl, _ := NewTable("t", testSchema(), 2)
	if err := tbl.Append(fillBatch(2500, 50), 1); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Schema()) != 4 || tbl.ColumnIndex("price") != 1 || tbl.ColumnIndex("zz") != -1 {
		t.Fatal("schema accessors")
	}
	if tbl.ColumnType(1) != Float64 || tbl.ColumnType(0) != Int64 {
		t.Fatal("column types")
	}
	s := tbl.Slice(0)
	if s.NumBlocks() != (s.NumRows()+BlockSize-1)/BlockSize {
		t.Fatal("NumBlocks")
	}
	if len(s.InsertXIDs()) != s.NumRows() {
		t.Fatal("InsertXIDs")
	}
	col := s.Column(0)
	if col.Len() != s.NumRows() {
		t.Fatalf("col len %d want %d", col.Len(), s.NumRows())
	}
	if col.String() == "" {
		t.Fatal("col string")
	}
	fcol := s.Column(1)
	if fcol.Len() != s.NumRows() {
		t.Fatal("float col len")
	}
	if tbl.DeleteOps() != 0 {
		t.Fatal("delete ops")
	}
	tbl.DeleteRows(0, []int{0}, 2)
	if tbl.DeleteOps() != 1 {
		t.Fatal("delete ops after delete")
	}
}

func TestFloatBoundsTail(t *testing.T) {
	tbl, _ := NewTable("t", testSchema(), 1)
	if err := tbl.Append(fillBatch(150, 51), 1); err != nil { // open tail only
		t.Fatal(err)
	}
	fcol := tbl.Slice(0).Column(1)
	min, max, ok := fcol.FloatBounds(0)
	if !ok || min > max {
		t.Fatalf("tail float bounds [%f,%f] ok=%v", min, max, ok)
	}
	// Empty column: no bounds.
	empty, _ := NewTable("e", testSchema(), 1)
	if _, _, ok := empty.Slice(0).Column(1).FloatBounds(0); ok {
		t.Fatal("bounds on empty float column")
	}
	if _, _, ok := empty.Slice(0).Column(0).IntBounds(0); ok {
		t.Fatal("bounds on empty int column")
	}
}

func TestDistinctCount(t *testing.T) {
	tbl, _ := NewTable("t", testSchema(), 2)
	b := NewBatch(testSchema())
	for i := 0; i < 3000; i++ {
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(i%7))
		b.Cols[1].Floats = append(b.Cols[1].Floats, float64(i))
		b.Cols[2].Strings = append(b.Cols[2].Strings, "x")
		b.Cols[3].Ints = append(b.Cols[3].Ints, 5)
	}
	b.N = 3000
	if err := tbl.Append(b, 1); err != nil {
		t.Fatal(err)
	}
	if got := tbl.DistinctCount(0); got != 7 {
		t.Fatalf("distinct %d want 7", got)
	}
	// Cached: second call identical.
	if got := tbl.DistinctCount(0); got != 7 {
		t.Fatal("cache broken")
	}
	if got := tbl.DistinctCount(3); got != 1 {
		t.Fatalf("constant col distinct %d", got)
	}
	// Floats: treated as all-distinct (never join keys).
	if got := tbl.DistinctCount(1); got != 3000 {
		t.Fatalf("float distinct %d", got)
	}
	// Version change invalidates the cache.
	tbl.DeleteRows(0, []int{0}, 2)
	if got := tbl.DistinctCount(0); got != 7 {
		t.Fatal("post-DML distinct")
	}
}
