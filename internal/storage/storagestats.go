package storage

// ColumnStorageStats describes the physical layout of one table column
// across all data slices: block counts by encoding, the open insert-buffer
// tail, and byte footprints. The pc.table_storage system table is built
// from these rows.
type ColumnStorageStats struct {
	Column string
	Type   ColumnType
	// Rows is the column's value count (equal across columns of a table);
	// Blocks counts sealed compressed blocks plus one per non-empty tail.
	Rows   int
	Blocks int
	// Sealed block counts by physical encoding. Float columns always report
	// RawBlocks (floats are stored verbatim).
	RawBlocks int
	RLEBlocks int
	FORBlocks int
	// TailRows counts values still in the open insert-buffer tail (§4.3.1).
	TailRows int
	// PayloadBytes is the compressed payload plus tail; ZoneMapBytes the
	// per-block min-max bounds; DictBytes the shared string dictionary
	// (reported once per column, 0 for non-strings).
	PayloadBytes int
	ZoneMapBytes int
	DictBytes    int
}

// StorageStats returns per-column physical storage statistics aggregated
// over the table's slices, in schema order. It takes the table read lock, so
// the row counts are consistent with a momentary snapshot.
func (t *Table) StorageStats() []ColumnStorageStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]ColumnStorageStats, len(t.schema))
	for ci, def := range t.schema {
		st := ColumnStorageStats{Column: def.Name, Type: def.Type}
		for _, s := range t.slices {
			c := s.cols[ci]
			st.Rows += c.Len()
			st.Blocks += c.NumBlocks()
			for _, b := range c.blocks {
				switch b.Enc {
				case EncRLE:
					st.RLEBlocks++
				case EncFOR:
					st.FORBlocks++
				default:
					st.RawBlocks++
				}
			}
			st.TailRows += len(c.tailInts) + len(c.tailFloats)
			st.PayloadBytes += c.MemBytes()
			st.ZoneMapBytes += c.ZoneMapBytes()
		}
		if d := t.dicts[ci]; d != nil {
			st.DictBytes = d.MemBytes()
		}
		out[ci] = st
	}
	return out
}
