package storage

import (
	"math"
	"math/rand"
	"testing"
)

// makeIntColumn builds a sealed Int64 column store from vals (plus an open
// tail for any remainder past the last full block).
func makeIntColumn(t *testing.T, vals []int64) *ColumnStore {
	t.Helper()
	c := newColumnStore(Int64, nil)
	for _, v := range vals {
		c.appendInt(v)
	}
	return c
}

// kernelTestPatterns produces one value pattern per encoding, including the
// width-0 constant case, a cross-word FOR width, and extreme FOR bases.
func kernelTestPatterns(n int) map[string][]int64 {
	r := rand.New(rand.NewSource(42))
	pats := make(map[string][]int64)

	constant := make([]int64, n) // FOR width 0
	for i := range constant {
		constant[i] = 77
	}
	pats["constant-for0"] = constant

	runs := make([]int64, n) // RLE: few long runs of far-apart values
	for i := range runs {
		runs[i] = int64((i/100)%7) * 1e17
	}
	pats["runs-rle"] = runs

	narrow := make([]int64, n) // FOR width 13 (crosses word boundaries)
	for i := range narrow {
		narrow[i] = 5000 + r.Int63n(1<<13)
	}
	pats["narrow-for13"] = narrow

	wide := make([]int64, n) // raw: full-range values, width 64
	for i := range wide {
		wide[i] = int64(r.Uint64())
	}
	pats["wide-raw"] = wide

	extreme := make([]int64, n) // FOR width 7 with base MinInt64
	for i := range extreme {
		extreme[i] = math.MinInt64 + r.Int63n(100)
	}
	pats["extreme-for"] = extreme

	return pats
}

func wantEncoding(name string) (Encoding, bool) {
	switch name {
	case "constant-for0", "narrow-for13", "extreme-for":
		return EncFOR, true
	case "runs-rle":
		return EncRLE, true
	case "wide-raw":
		return EncRaw, true
	}
	return 0, false
}

// TestReadIntRangeEquivalence checks ReadIntRange against ReadIntBlock
// sub-slicing for every encoding, every boundary alignment, and the tail.
func TestReadIntRangeEquivalence(t *testing.T) {
	const n = BlockSize + 250 // one sealed block plus an open tail
	r := rand.New(rand.NewSource(7))
	for name, vals := range kernelTestPatterns(n) {
		c := makeIntColumn(t, vals)
		if enc, ok := wantEncoding(name); ok {
			if got := c.blocks[0].Enc; got != enc {
				t.Fatalf("%s: block encoding = %v, want %v", name, got, enc)
			}
		}
		full := make([]int64, BlockSize)
		part := make([]int64, BlockSize)
		for bi := 0; bi < 2; bi++ { // block 0 sealed, block 1 = tail
			bn := c.ReadIntBlock(bi, full)
			cases := [][2]int{{0, bn}, {0, 1}, {bn - 1, bn}, {3, 4}, {bn / 3, 2 * bn / 3}, {5, 5}, {bn, bn + 50}}
			for i := 0; i < 40; i++ {
				lo := r.Intn(bn + 1)
				cases = append(cases, [2]int{lo, lo + r.Intn(bn+1-lo)})
			}
			for _, cse := range cases {
				lo, hi := cse[0], cse[1]
				got := c.ReadIntRange(bi, lo, hi, part)
				wantHi := hi
				if wantHi > bn {
					wantHi = bn
				}
				want := 0
				if lo < wantHi {
					want = wantHi - lo
				}
				if got != want {
					t.Fatalf("%s: block %d ReadIntRange(%d,%d) n = %d, want %d", name, bi, lo, hi, got, want)
				}
				for j := 0; j < want; j++ {
					if part[j] != full[lo+j] {
						t.Fatalf("%s: block %d ReadIntRange(%d,%d)[%d] = %d, want %d",
							name, bi, lo, hi, j, part[j], full[lo+j])
					}
				}
			}
		}
	}
}

// TestReadFloatRangeEquivalence checks the float range reader, including the
// open tail and out-of-range clamping.
func TestReadFloatRangeEquivalence(t *testing.T) {
	const n = BlockSize + 125
	c := newColumnStore(Float64, nil)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		c.appendFloat(r.Float64() * 1000)
	}
	full := make([]float64, BlockSize)
	part := make([]float64, BlockSize)
	for bi := 0; bi < 2; bi++ {
		bn := c.ReadFloatBlock(bi, full)
		for i := 0; i < 50; i++ {
			lo := r.Intn(bn + 1)
			hi := lo + r.Intn(bn+2-lo) // occasionally past the end
			got := c.ReadFloatRange(bi, lo, hi, part)
			wantHi := hi
			if wantHi > bn {
				wantHi = bn
			}
			want := 0
			if lo < wantHi {
				want = wantHi - lo
			}
			if got != want {
				t.Fatalf("block %d ReadFloatRange(%d,%d) n = %d, want %d", bi, lo, hi, got, want)
			}
			for j := 0; j < want; j++ {
				if part[j] != full[lo+j] {
					t.Fatalf("block %d ReadFloatRange(%d,%d)[%d] = %v, want %v", bi, lo, hi, j, part[j], full[lo+j])
				}
			}
		}
	}
}

// predForOp builds the IntPred the expr planner would emit for `col op c`,
// including the MinInt64/MaxInt64 empty-interval edges.
func predForOp(op string, c int64) IntPred {
	switch op {
	case "eq":
		return IntPred{Kind: IntPredRange, Lo: c, Hi: c}
	case "ne":
		return IntPred{Kind: IntPredRange, Lo: c, Hi: c, Not: true}
	case "lt":
		if c == math.MinInt64 {
			return IntPred{Kind: IntPredRange, Lo: 0, Hi: -1} // empty
		}
		return IntPred{Kind: IntPredRange, Lo: math.MinInt64, Hi: c - 1}
	case "le":
		return IntPred{Kind: IntPredRange, Lo: math.MinInt64, Hi: c}
	case "gt":
		if c == math.MaxInt64 {
			return IntPred{Kind: IntPredRange, Lo: 0, Hi: -1} // empty
		}
		return IntPred{Kind: IntPredRange, Lo: c + 1, Hi: math.MaxInt64}
	case "ge":
		return IntPred{Kind: IntPredRange, Lo: c, Hi: math.MaxInt64}
	}
	panic("unknown op " + op)
}

// opMatches is the scalar reference semantics for predForOp.
func opMatches(op string, v, c int64) bool {
	switch op {
	case "eq":
		return v == c
	case "ne":
		return v != c
	case "lt":
		return v < c
	case "le":
		return v <= c
	case "gt":
		return v > c
	case "ge":
		return v >= c
	}
	panic("unknown op " + op)
}

// refRanges is the decode-then-filter oracle: materialize the block, test
// every candidate row with match, and emit coalesced qualifying ranges.
func refRanges(full []int64, spans []RowRange, match func(int64) bool) []RowRange {
	var out []RowRange
	for _, sp := range spans {
		for r := sp.Start; r < sp.End; r++ {
			if match(full[r]) {
				out = AppendRange(out, r, r+1)
			}
		}
	}
	return out
}

func rangesEqual(a, b []RowRange) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// spanShapes returns candidate-span layouts for a block of bn rows: full
// block, fragments, singletons, and empty.
func spanShapes(bn int, r *rand.Rand) [][]RowRange {
	shapes := [][]RowRange{
		{{Start: 0, End: bn}},
		{{Start: 0, End: 1}, {Start: bn / 2, End: bn/2 + 3}, {Start: bn - 1, End: bn}},
		{{Start: 17, End: 17}}, // empty span
		nil,
	}
	for i := 0; i < 6; i++ {
		var spans []RowRange
		pos := r.Intn(5)
		for pos < bn {
			end := pos + 1 + r.Intn(60)
			if end > bn {
				end = bn
			}
			spans = append(spans, RowRange{Start: pos, End: end})
			pos = end + 1 + r.Intn(200)
		}
		shapes = append(shapes, spans)
	}
	return shapes
}

// TestEvalPredRangesEquivalence proves the encoded-domain kernels equivalent
// to decode-then-filter for all comparison shapes on every encoding,
// including boundary constants at block min/max and empty intervals.
func TestEvalPredRangesEquivalence(t *testing.T) {
	const n = BlockSize
	r := rand.New(rand.NewSource(11))
	ops := []string{"eq", "ne", "lt", "le", "gt", "ge"}
	for name, vals := range kernelTestPatterns(n) {
		c := makeIntColumn(t, vals)
		full := make([]int64, BlockSize)
		bn := c.ReadIntBlock(0, full)
		min, max, _ := c.IntBounds(0)

		consts := []int64{min, max, (min + max) / 2, math.MinInt64, math.MaxInt64}
		if min > math.MinInt64 {
			consts = append(consts, min-1)
		}
		if max < math.MaxInt64 {
			consts = append(consts, max+1)
		}
		consts = append(consts, full[r.Intn(bn)], full[r.Intn(bn)])

		var preds []IntPred
		for _, cst := range consts {
			for _, op := range ops {
				preds = append(preds, predForOp(op, cst))
			}
		}
		// Between shapes, including inverted (empty) and clamping intervals.
		preds = append(preds,
			IntPred{Kind: IntPredRange, Lo: min, Hi: max},
			IntPred{Kind: IntPredRange, Lo: (min+max)/2 - 3, Hi: (min+max)/2 + 3},
			IntPred{Kind: IntPredRange, Lo: 10, Hi: -10}, // empty
			IntPred{Kind: IntPredRange, Lo: 10, Hi: -10, Not: true},
			IntPred{Kind: IntPredRange, Lo: (min+max)/2 - 3, Hi: (min+max)/2 + 3, Not: true},
		)
		// In sets: present values, absent values, and NOT IN.
		set := map[int64]struct{}{full[0]: {}, full[bn/2]: {}, min: {}}
		var setVals []int64
		for v := range set {
			setVals = append(setVals, v)
		}
		preds = append(preds,
			IntPred{Kind: IntPredSet, Set: set, SetVals: setVals},
			IntPred{Kind: IntPredSet, Set: set, SetVals: setVals, Not: true},
			IntPred{Kind: IntPredSet, Set: map[int64]struct{}{}, SetVals: []int64{}},
		)

		for _, spans := range spanShapes(bn, r) {
			for pi := range preds {
				p := &preds[pi]
				got, ok := c.EvalPredRanges(0, p, spans, nil)
				if !ok {
					continue // decode-then-filter fallback; nothing to verify
				}
				want := refRanges(full, spans, p.Match)
				if !rangesEqual(got, want) {
					t.Fatalf("%s: pred %+v spans %v: kernel = %v, want %v", name, *p, spans, got, want)
				}
			}
		}

		// Kernel coverage: RLE and FOR sealed blocks must have kernels.
		if enc := c.blocks[0].Enc; enc == EncRLE || enc == EncFOR {
			p := predForOp("ge", min)
			if _, ok := c.EvalPredRanges(0, &p, []RowRange{{Start: 0, End: bn}}, nil); !ok {
				t.Fatalf("%s: expected kernel support for %v block", name, enc)
			}
		}
	}
}

// TestEvalPredRangesOpSemantics cross-checks predForOp's interval translation
// against the scalar comparison, so the kernel oracle itself is validated.
func TestEvalPredRangesOpSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ops := []string{"eq", "ne", "lt", "le", "gt", "ge"}
	vals := []int64{math.MinInt64, math.MinInt64 + 1, -5, 0, 5, math.MaxInt64 - 1, math.MaxInt64}
	for i := 0; i < 200; i++ {
		vals = append(vals, int64(r.Uint64()))
	}
	for _, op := range ops {
		for _, c := range vals {
			p := predForOp(op, c)
			for _, v := range vals {
				if got, want := p.Match(v), opMatches(op, v, c); got != want {
					t.Fatalf("predForOp(%s, %d).Match(%d) = %v, want %v", op, c, v, got, want)
				}
			}
		}
	}
}

// TestEvalPredRangesUnsupported pins the fallback contract: float columns and
// the open tail never claim kernel support.
func TestEvalPredRangesUnsupported(t *testing.T) {
	fc := newColumnStore(Float64, nil)
	for i := 0; i < BlockSize; i++ {
		fc.appendFloat(float64(i))
	}
	p := predForOp("ge", 0)
	if _, ok := fc.EvalPredRanges(0, &p, []RowRange{{Start: 0, End: BlockSize}}, nil); ok {
		t.Fatal("float column claimed kernel support")
	}

	ic := newColumnStore(Int64, nil)
	for i := 0; i < 10; i++ {
		ic.appendInt(int64(i))
	}
	if _, ok := ic.EvalPredRanges(0, &p, []RowRange{{Start: 0, End: 10}}, nil); ok {
		t.Fatal("open tail claimed kernel support")
	}
}
