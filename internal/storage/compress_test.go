package storage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, vals []int64) {
	t.Helper()
	if len(vals) == 0 {
		return
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	enc, payload := encodeInts(vals, min, max)
	out := make([]int64, len(vals))
	decodeInts(enc, payload, len(vals), min, max, out)
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("enc %v: value %d: got %d want %d", enc, i, out[i], vals[i])
		}
	}
}

func TestEncodeRoundTripConstant(t *testing.T) {
	vals := make([]int64, 777)
	for i := range vals {
		vals[i] = 42
	}
	roundTrip(t, vals)
}

func TestEncodeRoundTripSequential(t *testing.T) {
	vals := make([]int64, BlockSize)
	for i := range vals {
		vals[i] = int64(i) + 1_000_000
	}
	roundTrip(t, vals)
}

func TestEncodeRoundTripRuns(t *testing.T) {
	var vals []int64
	r := rand.New(rand.NewSource(7))
	for len(vals) < BlockSize {
		v := r.Int63n(5)
		run := 1 + r.Intn(50)
		for j := 0; j < run && len(vals) < BlockSize; j++ {
			vals = append(vals, v)
		}
	}
	roundTrip(t, vals)
}

func TestEncodeRoundTripExtremes(t *testing.T) {
	roundTrip(t, []int64{math.MinInt64, math.MaxInt64, 0, -1, 1})
	roundTrip(t, []int64{math.MinInt64, math.MinInt64})
	roundTrip(t, []int64{math.MaxInt64})
	roundTrip(t, []int64{-5, -5, -5, -4})
}

func TestEncodeRoundTripNegativeSpan(t *testing.T) {
	vals := []int64{-1000, -999, -998, -500, -1}
	roundTrip(t, vals)
}

func TestEncodePicksRLEForConstants(t *testing.T) {
	vals := make([]int64, BlockSize)
	enc, payload := encodeInts(vals, 0, 0)
	if enc != EncRLE && enc != EncFOR {
		t.Fatalf("constant block should not stay raw, got %v", enc)
	}
	if len(payload) >= len(vals) {
		t.Fatalf("constant block should compress: %d words for %d values", len(payload), len(vals))
	}
}

func TestEncodePicksFORForSmallRange(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	vals := make([]int64, BlockSize)
	for i := range vals {
		vals[i] = 1 << 40
		vals[i] += r.Int63n(16)
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	enc, payload := encodeInts(vals, min, max)
	if enc != EncFOR {
		t.Fatalf("want FOR, got %v", enc)
	}
	if len(payload) > BlockSize/8 {
		t.Fatalf("FOR payload too large: %d words", len(payload))
	}
	roundTrip(t, vals)
}

// Property: encode/decode is the identity for arbitrary inputs.
func TestEncodeRoundTripQuick(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 || len(vals) > BlockSize {
			return true
		}
		min, max := vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		enc, payload := encodeInts(vals, min, max)
		out := make([]int64, len(vals))
		decodeInts(enc, payload, len(vals), min, max, out)
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodingString(t *testing.T) {
	if EncRaw.String() != "raw" || EncRLE.String() != "rle" || EncFOR.String() != "for" {
		t.Fatal("encoding names wrong")
	}
	if Encoding(99).String() != "unknown" {
		t.Fatal("unknown encoding name wrong")
	}
}

func TestForWidth(t *testing.T) {
	cases := []struct {
		min, max int64
		want     int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 255, 8},
		{-1, 0, 1},
		{math.MinInt64, math.MaxInt64, 64},
		{100, 100, 0},
	}
	for _, c := range cases {
		if got := forWidth(c.min, c.max); got != c.want {
			t.Errorf("forWidth(%d,%d)=%d want %d", c.min, c.max, got, c.want)
		}
	}
}
