package storage

// Partial decode: materialize only the block-relative sub-range [lo, hi) of
// a block instead of all BlockSize rows. Cache-hit scans and late
// materialization use this so a 3-row candidate span costs 3 decodes, not
// 1,000. Each encoding seeks in O(1) (raw, FOR) or O(runs) (RLE).

// ReadIntRange decodes rows [lo, hi) of block i into dst[:hi-lo] and returns
// the number of values written. Row indexes are block-relative; dst must
// have room for hi-lo values. Block indexes past the sealed blocks refer to
// the open tail, where hi is clamped to the tail length.
//
// pclint:noalloc
func (c *ColumnStore) ReadIntRange(i, lo, hi int, dst []int64) int {
	if i >= len(c.blocks) {
		if hi > len(c.tailInts) {
			hi = len(c.tailInts)
		}
		if lo >= hi {
			return 0
		}
		return copy(dst, c.tailInts[lo:hi])
	}
	b := c.blocks[i]
	if hi > b.N {
		hi = b.N
	}
	if lo >= hi {
		return 0
	}
	n := hi - lo
	switch b.Enc {
	case EncRaw:
		for j := 0; j < n; j++ {
			dst[j] = int64(b.Words[lo+j])
		}
	case EncRLE:
		rleReadRange(b.Words, lo, hi, dst)
	case EncFOR:
		base := int64(b.Words[0])
		width := forWidth(b.MinI, b.MaxI)
		if width == 0 {
			for j := 0; j < n; j++ {
				dst[j] = base
			}
		} else {
			unpackBitsFrom(dst[:n], b.Words[1:], base, width, lo, n)
		}
	}
	return n
}

// rleReadRange decodes rows [lo, hi) of an RLE payload into dst: skip whole
// runs before lo, then emit clipped runs until hi.
func rleReadRange(words []uint64, lo, hi int, dst []int64) {
	pos := 0
	out := 0
	for w := 0; w+1 < len(words) && pos < hi; w += 2 {
		run := int(words[w+1])
		runEnd := pos + run
		if runEnd > lo {
			v := int64(words[w])
			start, end := pos, runEnd
			if start < lo {
				start = lo
			}
			if end > hi {
				end = hi
			}
			for j := start; j < end; j++ {
				dst[out] = v
				out++
			}
		}
		pos = runEnd
	}
}

// ReadFloatRange copies rows [lo, hi) of float block i into dst and returns
// the number of values written. Float blocks are stored uncompressed, so
// this is a clipped copy.
//
// pclint:noalloc
func (c *ColumnStore) ReadFloatRange(i, lo, hi int, dst []float64) int {
	src := c.tailFloats
	if i < len(c.blocks) {
		src = c.blocks[i].Floats
	}
	if hi > len(src) {
		hi = len(src)
	}
	if lo >= hi {
		return 0
	}
	return copy(dst, src[lo:hi])
}
