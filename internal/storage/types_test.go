package storage

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDateRoundTrip(t *testing.T) {
	cases := []struct{ y, m, d int }{
		{1970, 1, 1}, {1969, 12, 31}, {2000, 2, 29}, {1995, 1, 1},
		{1995, 1, 31}, {1900, 3, 1}, {2400, 12, 31}, {1, 1, 1},
	}
	for _, c := range cases {
		days := DateFromYMD(c.y, c.m, c.d)
		y, m, d := YMDFromDate(days)
		if y != c.y || m != c.m || d != c.d {
			t.Errorf("round trip %04d-%02d-%02d -> %d -> %04d-%02d-%02d", c.y, c.m, c.d, days, y, m, d)
		}
	}
	if DateFromYMD(1970, 1, 1) != 0 {
		t.Errorf("epoch should be day 0, got %d", DateFromYMD(1970, 1, 1))
	}
}

func TestDateMatchesTimePackage(t *testing.T) {
	// Cross-check against the standard library over a broad range.
	for days := int64(-40000); days <= 40000; days += 137 {
		y, m, d := YMDFromDate(days)
		want := time.Unix(0, 0).UTC().AddDate(0, 0, int(days))
		if y != want.Year() || m != int(want.Month()) || d != want.Day() {
			t.Fatalf("day %d: got %04d-%02d-%02d want %s", days, y, m, d, want.Format("2006-01-02"))
		}
	}
}

func TestParseFormatDate(t *testing.T) {
	d, err := ParseDate("1995-01-31")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatDate(d); got != "1995-01-31" {
		t.Fatalf("got %s", got)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ParseDate("1995-13-01"); err == nil {
		t.Fatal("expected error for month 13")
	}
}

func TestDateQuick(t *testing.T) {
	f := func(n int32) bool {
		days := int64(n % 1_000_000)
		y, m, d := YMDFromDate(days)
		return DateFromYMD(y, m, d) == days
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRanges(t *testing.T) {
	ok := []RowRange{{0, 5}, {7, 9}, {9, 10}}
	if err := ValidateRanges(ok, 10); err != nil {
		t.Fatalf("valid ranges rejected: %v", err)
	}
	bad := [][]RowRange{
		{{5, 5}},         // empty
		{{-1, 3}},        // negative
		{{0, 11}},        // past end
		{{0, 5}, {4, 8}}, // overlap
		{{5, 8}, {0, 2}}, // unsorted
	}
	for i, rs := range bad {
		if err := ValidateRanges(rs, 10); err == nil {
			t.Errorf("case %d: invalid ranges accepted", i)
		}
	}
}

func TestRangesRowCount(t *testing.T) {
	if n := RangesRowCount([]RowRange{{0, 5}, {10, 12}}); n != 7 {
		t.Fatalf("got %d", n)
	}
	if n := RangesRowCount(nil); n != 0 {
		t.Fatalf("got %d", n)
	}
}

func TestColumnTypeString(t *testing.T) {
	names := map[ColumnType]string{
		Int64: "bigint", Float64: "double", Date: "date", String: "varchar", Bool: "boolean",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%v", typ)
		}
	}
	if !Int64.IsInt() || Float64.IsInt() || !Date.IsInt() || !String.IsInt() || !Bool.IsInt() {
		t.Fatal("IsInt wrong")
	}
}

func TestSchemaColumnIndex(t *testing.T) {
	s := Schema{{"a", Int64}, {"b", Float64}}
	if s.ColumnIndex("b") != 1 || s.ColumnIndex("z") != -1 {
		t.Fatal("ColumnIndex wrong")
	}
}
