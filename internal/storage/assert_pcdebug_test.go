//go:build pcdebug

package storage

import "testing"

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", name)
		}
	}()
	fn()
}

func TestAssertRowRangesPanics(t *testing.T) {
	// Well-formed inputs must pass, including adjacent ranges.
	AssertRowRanges(nil, 10, "test")
	AssertRowRanges([]RowRange{{Start: 0, End: 4}, {Start: 4, End: 8}}, 8, "test")
	AssertRowRanges([]RowRange{{Start: 2, End: 5}, {Start: 9, End: 12}}, -1, "test")

	mustPanic(t, "empty range", func() {
		AssertRowRanges([]RowRange{{Start: 3, End: 3}}, 10, "test")
	})
	mustPanic(t, "negative start", func() {
		AssertRowRanges([]RowRange{{Start: -1, End: 3}}, 10, "test")
	})
	mustPanic(t, "overlap", func() {
		AssertRowRanges([]RowRange{{Start: 0, End: 5}, {Start: 4, End: 8}}, 10, "test")
	})
	mustPanic(t, "out of order", func() {
		AssertRowRanges([]RowRange{{Start: 6, End: 8}, {Start: 0, End: 2}}, 10, "test")
	})
	mustPanic(t, "beyond limit", func() {
		AssertRowRanges([]RowRange{{Start: 0, End: 11}}, 10, "test")
	})
}

func TestAssertZoneMapPanics(t *testing.T) {
	assertZoneMapInt(3, 3, "test")
	assertZoneMapFloat(1.5, 2.5, "test")
	mustPanic(t, "int min>max", func() { assertZoneMapInt(5, 3, "test") })
	mustPanic(t, "float min>max", func() { assertZoneMapFloat(2.5, 1.5, "test") })
}

func TestAssertMVCCPanics(t *testing.T) {
	assertMVCCRow(10, 0, 0, "test")  // live row
	assertMVCCRow(10, 10, 0, "test") // deleted in the inserting txn
	assertMVCCRow(10, 12, 0, "test") // deleted later
	mustPanic(t, "delete before insert", func() { assertMVCCRow(10, 5, 0, "test") })

	s := &Slice{insertXID: []uint64{1}, deleteXID: []uint64{0}, numRows: 1}
	assertSliceMVCC(s, "test")
	mustPanic(t, "header length mismatch", func() {
		bad := &Slice{insertXID: []uint64{1}, deleteXID: nil, numRows: 1}
		assertMVCCHeaders(bad, "test")
	})
}
