package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Catalog is the database catalog: the set of tables plus the global
// transaction-id source used for MVCC snapshots.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table // guarded by mu
	xid    atomic.Uint64
}

// NewCatalog returns an empty catalog. Transaction ids start at 1.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// NextXID allocates a fresh transaction id for a writing statement.
func (c *Catalog) NextXID() uint64 { return c.xid.Add(1) }

// Snapshot returns the snapshot id a read-only statement should run at: all
// transactions allocated so far are visible.
func (c *Catalog) Snapshot() uint64 { return c.xid.Load() }

// CreateTable creates and registers a table.
func (c *Catalog) CreateTable(name string, schema Schema, numSlices int, sortKey ...string) (*Table, error) {
	t, err := NewTable(name, schema, numSlices, sortKey...)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[name]; exists {
		return nil, fmt.Errorf("storage: table %s already exists", name)
	}
	c.tables[name] = t
	return t, nil
}

// RegisterTable adds an externally built table (used by reorganization
// baselines that construct a sorted copy).
func (c *Catalog) RegisterTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[t.Name()]; exists {
		return fmt.Errorf("storage: table %s already exists", t.Name())
	}
	c.tables[t.Name()] = t
	return nil
}

// DropTable removes a table.
func (c *Catalog) DropTable(name string) {
	c.mu.Lock()
	delete(c.tables, name)
	c.mu.Unlock()
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// TableNames returns the registered table names, sorted.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
