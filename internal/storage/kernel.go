package storage

// Encoded-domain scan kernels: leaf predicates evaluated directly on a
// block's stored form, emitting qualifying row ranges without materializing
// the 1,000-row vector first. RLE blocks are evaluated per run in O(runs);
// FOR blocks compare in the packed delta domain; and blocks whose zone maps
// fully decide the predicate (including width-0 constant blocks) are resolved
// with a single comparison. EncRaw blocks and the open tail report ok=false —
// for them decode-then-filter is already the cheapest plan.

// IntPredKind selects the shape of an IntPred.
type IntPredKind uint8

const (
	// IntPredRange matches Lo <= v <= Hi (Not inverts the interval). An
	// empty interval (Lo > Hi) matches nothing (everything when Not).
	IntPredRange IntPredKind = iota
	// IntPredSet matches v ∈ Set (Not inverts).
	IntPredSet
)

// IntPred is a leaf integer predicate in the form the encoded-domain kernels
// evaluate: interval membership or set membership over the int64
// representation (raw integers, dates, bools, dictionary codes).
type IntPred struct {
	Kind   IntPredKind
	Lo, Hi int64
	Not    bool
	Set    map[int64]struct{}
	// SetVals lists Set's members for zone-map short-circuiting; nil when the
	// values are unordered dictionary codes (no bound reasoning possible).
	SetVals []int64
}

// Match reports whether a single value satisfies the predicate.
//
// pclint:noalloc
func (p *IntPred) Match(v int64) bool {
	if p.Kind == IntPredSet {
		_, ok := p.Set[v]
		return ok != p.Not
	}
	return (v >= p.Lo && v <= p.Hi) != p.Not
}

// blockDecision is the zone-map verdict for one block.
type blockDecision uint8

const (
	decideScan blockDecision = iota // rows must be inspected
	decideAllPass
	decideAllFail
)

// decide classifies a block with exact value bounds [min, max] against p.
// Constant blocks (min == max) are always fully decided.
func (p *IntPred) decide(min, max int64) blockDecision {
	if min == max {
		if p.Match(min) {
			return decideAllPass
		}
		return decideAllFail
	}
	switch p.Kind {
	case IntPredRange:
		empty := p.Lo > p.Hi
		disjoint := empty || p.Hi < min || p.Lo > max
		covers := !empty && p.Lo <= min && max <= p.Hi
		if p.Not {
			if disjoint {
				return decideAllPass
			}
			if covers {
				return decideAllFail
			}
		} else {
			if disjoint {
				return decideAllFail
			}
			if covers {
				return decideAllPass
			}
		}
	case IntPredSet:
		if p.SetVals != nil && !p.Not {
			for _, v := range p.SetVals {
				if v >= min && v <= max {
					return decideScan
				}
			}
			return decideAllFail
		}
	}
	return decideScan
}

// AppendRange appends [lo, hi) to dst, coalescing with the previous range
// when adjacent.
func AppendRange(dst []RowRange, lo, hi int) []RowRange {
	if n := len(dst); n > 0 && dst[n-1].End == lo {
		dst[n-1].End = hi
		return dst
	}
	return append(dst, RowRange{Start: lo, End: hi})
}

// EvalPredRanges evaluates p over the block-relative candidate spans of
// block i, appending the qualifying (still block-relative) sub-ranges to dst
// and returning it. ok is false when this block has no encoded-domain kernel
// (float columns, EncRaw payloads not decided by their bounds, or the open
// tail) — the caller must fall back to decode-then-filter. spans must be
// sorted, non-overlapping and within [0, block rows).
//
// The kernels append only into the caller-provided dst; pclint:noalloc
// enforces that the whole encoded-domain path stays allocation-free.
func (c *ColumnStore) EvalPredRanges(i int, p *IntPred, spans []RowRange, dst []RowRange) (out []RowRange, ok bool) {
	if c.Typ == Float64 || i >= len(c.blocks) {
		return dst, false
	}
	b := c.blocks[i]
	// Zone-map short-circuit: bounds are exact (computed at seal), so a
	// decided block costs O(1) regardless of encoding — this is also the
	// single-comparison path for width-0 constant FOR blocks.
	switch p.decide(b.MinI, b.MaxI) {
	case decideAllFail:
		return dst, true
	case decideAllPass:
		for _, sp := range spans {
			if sp.Start < sp.End {
				dst = AppendRange(dst, sp.Start, sp.End)
			}
		}
		return dst, true
	}
	switch b.Enc {
	case EncRLE:
		return evalRLEPred(b.Words, p, spans, dst), true
	case EncFOR:
		return evalFORPred(b, p, spans, dst), true
	}
	return dst, false
}

// evalRLEPred walks the (value, run) pairs once, intersecting matching runs
// with the candidate spans: O(runs + spans) with no per-row work.
func evalRLEPred(words []uint64, p *IntPred, spans []RowRange, dst []RowRange) []RowRange {
	si := 0
	pos := 0
	for w := 0; w+1 < len(words) && si < len(spans); w += 2 {
		v := int64(words[w])
		runStart := pos
		runEnd := pos + int(words[w+1])
		pos = runEnd
		if !p.Match(v) {
			continue
		}
		for si < len(spans) && spans[si].End <= runStart {
			si++
		}
		for j := si; j < len(spans) && spans[j].Start < runEnd; j++ {
			lo, hi := spans[j].Start, spans[j].End
			if lo < runStart {
				lo = runStart
			}
			if hi > runEnd {
				hi = runEnd
			}
			if lo < hi {
				dst = AppendRange(dst, lo, hi)
			}
		}
	}
	return dst
}

// evalFORPred evaluates p over the packed delta fields of a FOR block. For
// plain intervals the comparison constants are translated into the delta
// domain once, so the inner loop is extract-compare with no base addition;
// other shapes decode each field to its value with one add and call Match.
func evalFORPred(b *Block, p *IntPred, spans []RowRange, dst []RowRange) []RowRange {
	base := int64(b.Words[0])
	width := forWidth(b.MinI, b.MaxI) // > 0: width 0 was decided by bounds
	src := b.Words[1:]
	mask := ^uint64(0) >> (64 - width)

	deltaCmp := p.Kind == IntPredRange && !p.Not
	var dLo, dHi uint64
	if deltaCmp {
		// decide() ruled out disjoint intervals, so the clamped interval is
		// non-empty. Wrapping uint64 subtraction is exact two's complement.
		if p.Lo > base {
			dLo = uint64(p.Lo) - uint64(base)
		}
		hi := p.Hi
		if hi > b.MaxI {
			hi = b.MaxI
		}
		dHi = uint64(hi) - uint64(base)
	}

	for _, sp := range spans {
		runStart := -1
		bitPos := sp.Start * width
		for r := sp.Start; r < sp.End; r++ {
			word := bitPos >> 6
			off := bitPos & 63
			d := src[word] >> off
			if off+width > 64 {
				d |= src[word+1] << (64 - off)
			}
			d &= mask
			bitPos += width
			var m bool
			if deltaCmp {
				m = d >= dLo && d <= dHi
			} else {
				m = p.Match(base + int64(d))
			}
			if m {
				if runStart < 0 {
					runStart = r
				}
			} else if runStart >= 0 {
				dst = AppendRange(dst, runStart, r)
				runStart = -1
			}
		}
		if runStart >= 0 {
			dst = AppendRange(dst, runStart, sp.End)
		}
	}
	return dst
}
