package storage

// Model-based property test: a Table must behave exactly like a trivial
// in-memory reference model under any interleaving of appends, deletes,
// updates-as-delete+insert, and vacuums.

import (
	"math/rand"
	"testing"
)

type modelRow struct {
	id      int64
	val     int64
	deleted bool
}

type model struct {
	rows []modelRow
}

func (m *model) visibleIDs() map[int64]int64 {
	out := make(map[int64]int64)
	for _, r := range m.rows {
		if !r.deleted {
			out[r.id] = r.val
		}
	}
	return out
}

// tableVisible reads all visible rows of the table at the given snapshot.
func tableVisible(t *testing.T, tbl *Table, snapshot uint64) map[int64]int64 {
	t.Helper()
	out := make(map[int64]int64)
	unlock := tbl.RLockScan()
	defer unlock()
	idBuf := make([]int64, BlockSize)
	valBuf := make([]int64, BlockSize)
	for si := 0; si < tbl.NumSlices(); si++ {
		s := tbl.Slice(si)
		idCol := s.Column(0)
		valCol := s.Column(1)
		for blk := 0; blk*BlockSize < s.NumRows(); blk++ {
			base := blk * BlockSize
			n := s.NumRows() - base
			if n > BlockSize {
				n = BlockSize
			}
			idCol.ReadIntBlock(blk, idBuf)
			valCol.ReadIntBlock(blk, valBuf)
			for i := 0; i < n; i++ {
				if s.Visible(base+i, snapshot) {
					if _, dup := out[idBuf[i]]; dup {
						t.Fatalf("duplicate visible id %d", idBuf[i])
					}
					out[idBuf[i]] = valBuf[i]
				}
			}
		}
	}
	return out
}

func TestTableMatchesModelUnderRandomOps(t *testing.T) {
	schema := Schema{{Name: "id", Type: Int64}, {Name: "val", Type: Int64}}
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		cat := NewCatalog()
		tbl, err := cat.CreateTable("m", schema, 1+r.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		m := &model{}
		nextID := int64(0)

		for step := 0; step < 120; step++ {
			switch r.Intn(10) {
			case 0, 1, 2, 3: // append a batch
				n := 1 + r.Intn(400)
				b := NewBatch(schema)
				for i := 0; i < n; i++ {
					v := r.Int63n(1000)
					b.Cols[0].Ints = append(b.Cols[0].Ints, nextID)
					b.Cols[1].Ints = append(b.Cols[1].Ints, v)
					m.rows = append(m.rows, modelRow{id: nextID, val: v})
					nextID++
				}
				b.N = n
				if err := tbl.Append(b, cat.NextXID()); err != nil {
					t.Fatal(err)
				}
			case 4, 5, 6: // delete random visible ids
				vis := m.visibleIDs()
				if len(vis) == 0 {
					continue
				}
				// Pick some ids to delete from the model...
				var targets []int64
				for id := range vis {
					if r.Intn(10) == 0 {
						targets = append(targets, id)
					}
					if len(targets) >= 30 {
						break
					}
				}
				if len(targets) == 0 {
					continue
				}
				del := make(map[int64]bool, len(targets))
				for _, id := range targets {
					del[id] = true
				}
				for i := range m.rows {
					if del[m.rows[i].id] {
						m.rows[i].deleted = true
					}
				}
				// ...and find their physical rows in the table.
				xid := cat.NextXID()
				unlock := tbl.RLockScan()
				type loc struct {
					slice int
					row   int
				}
				var locs []loc
				buf := make([]int64, BlockSize)
				for si := 0; si < tbl.NumSlices(); si++ {
					s := tbl.Slice(si)
					for blk := 0; blk*BlockSize < s.NumRows(); blk++ {
						base := blk * BlockSize
						n := s.NumRows() - base
						if n > BlockSize {
							n = BlockSize
						}
						s.Column(0).ReadIntBlock(blk, buf)
						for i := 0; i < n; i++ {
							if del[buf[i]] && s.DeleteXIDs()[base+i] == 0 {
								locs = append(locs, loc{si, base + i})
							}
						}
					}
				}
				unlock()
				perSlice := map[int][]int{}
				for _, l := range locs {
					perSlice[l.slice] = append(perSlice[l.slice], l.row)
				}
				for si, rows := range perSlice {
					tbl.DeleteRows(si, rows, xid)
				}
			case 7, 8: // vacuum
				tbl.Vacuum(cat.Snapshot())
				// The model compacts too (deleted rows disappear).
				kept := m.rows[:0]
				for _, row := range m.rows {
					if !row.deleted {
						kept = append(kept, row)
					}
				}
				m.rows = kept
			case 9: // no-op version bump
				tbl.BumpVersion()
			}

			got := tableVisible(t, tbl, cat.Snapshot())
			want := m.visibleIDs()
			if len(got) != len(want) {
				t.Fatalf("seed %d step %d: %d visible rows, model has %d", seed, step, len(got), len(want))
			}
			for id, v := range want {
				if got[id] != v {
					t.Fatalf("seed %d step %d: id %d = %d, model %d", seed, step, id, got[id], v)
				}
			}
		}
	}
}
