package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Batch is a columnar set of rows to append. For every column of the target
// schema exactly one of the vectors is populated: Ints for Int64/Date/Bool
// columns (dates as day numbers, bools as 0/1), Floats for Float64 columns,
// and Strings for String columns.
type Batch struct {
	Cols []ColVec
	N    int
}

// ColVec is one column of a Batch.
type ColVec struct {
	Ints    []int64
	Floats  []float64
	Strings []string
}

// NewBatch allocates an empty batch shaped like schema.
func NewBatch(schema Schema) *Batch {
	return &Batch{Cols: make([]ColVec, len(schema))}
}

// Table is a columnar relation partitioned into data slices.
//
// Concurrency: a table-level RWMutex serializes DML against scans. Scans of
// different slices run in parallel under the read lock.
type Table struct {
	mu sync.RWMutex

	// layoutGate serializes layout changes (Vacuum) against DML statements
	// that need the layout stable across a match/mutate pair. Vacuum holds it
	// for the whole reorganization; LockLayout exposes it as the pessimistic
	// fallback after optimistic epoch-checked DML keeps losing to concurrent
	// vacuums. Lock order: layoutGate before mu, never the reverse.
	layoutGate sync.Mutex

	// name, schema, colIdx and sortKey are immutable after NewTable. The
	// dicts and slices slice headers are also fixed at construction: only
	// their *contents* change, under mu (scans read them under RLockScan).
	name    string
	schema  Schema
	colIdx  map[string]int
	dicts   []*Dict // shared per-column dictionaries (nil for non-strings)
	slices  []*Slice
	sortKey []int // column indexes; empty = unsorted

	// sortedRows[i] is the number of rows of slice i that are covered by the
	// sort order; rows beyond it live in the insert buffer (§4.3.1) until the
	// next vacuum merges them.
	sortedRows []int // guarded by mu

	nextChunk int // guarded by mu; round-robin chunk distribution cursor

	// version counts committed DML statements against this table. Result
	// caches and join-index entries compare versions to detect changes.
	version uint64 // guarded by mu

	// layoutEpoch changes only when physical row numbers change (vacuum /
	// reorganization). Predicate-cache entries are bound to an epoch.
	layoutEpoch uint64 // guarded by mu

	// deleteOps counts DELETE statements; materialized-view maintenance uses
	// it to distinguish append-only histories (incrementally refreshable)
	// from ones needing a full rebuild.
	deleteOps uint64 // guarded by mu

	// distinctCache memoizes per-column distinct counts for the planner.
	distinctCache map[int]distinctEntry // guarded by mu
}

type distinctEntry struct {
	version uint64
	count   int
}

// NewTable creates an empty table with numSlices data slices. sortKey lists
// column names forming an optional compound sort key.
func NewTable(name string, schema Schema, numSlices int, sortKey ...string) (*Table, error) {
	if numSlices < 1 {
		return nil, fmt.Errorf("storage: table %s: need at least 1 slice", name)
	}
	t := &Table{
		name:       name,
		schema:     schema,
		colIdx:     make(map[string]int, len(schema)),
		dicts:      make([]*Dict, len(schema)),
		sortedRows: make([]int, numSlices),
	}
	for i, def := range schema {
		if _, dup := t.colIdx[def.Name]; dup {
			return nil, fmt.Errorf("storage: table %s: duplicate column %s", name, def.Name)
		}
		t.colIdx[def.Name] = i
		if def.Type == String {
			t.dicts[i] = NewDict()
		}
	}
	for _, k := range sortKey {
		idx, ok := t.colIdx[k]
		if !ok {
			return nil, fmt.Errorf("storage: table %s: sort key column %s not found", name, k)
		}
		t.sortKey = append(t.sortKey, idx)
	}
	for i := 0; i < numSlices; i++ {
		t.slices = append(t.slices, newSlice(schema, t.dicts))
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// ColumnIndex resolves a column name to its index, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// NumSlices returns the number of data slices.
func (t *Table) NumSlices() int { return len(t.slices) }

// Slice returns data slice i. Callers must hold the scan lock (RLockScan).
func (t *Table) Slice(i int) *Slice { return t.slices[i] }

// Dict returns the dictionary of a string column (nil otherwise).
func (t *Table) Dict(col int) *Dict { return t.dicts[col] }

// Version returns the DML version counter.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// LayoutEpoch returns the physical-layout epoch.
func (t *Table) LayoutEpoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.layoutEpoch
}

// NumRows returns the total physical row count across slices.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, s := range t.slices {
		n += s.numRows
	}
	return n
}

// RLockScan takes the table's read lock for the duration of a scan; the
// returned function releases it.
func (t *Table) RLockScan() func() {
	t.mu.RLock()
	return t.mu.RUnlock
}

// Append adds a batch of rows at transaction xid, distributing chunks of
// BlockSize rows round-robin over the slices. If the table has a sort key,
// appended rows land in the insert buffer (the tail of each slice) and are
// merged into sort order by the next Vacuum, as in §4.3.1.
func (t *Table) Append(b *Batch, xid uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appendLocked(b, xid)
}

func (t *Table) appendLocked(b *Batch, xid uint64) error {
	if len(b.Cols) != len(t.schema) {
		return fmt.Errorf("storage: table %s: batch has %d columns, schema has %d", t.name, len(b.Cols), len(t.schema))
	}
	// Pre-encode strings to dict codes.
	ints := make([][]int64, len(t.schema))
	floats := make([][]float64, len(t.schema))
	for i, def := range t.schema {
		cv := &b.Cols[i]
		switch {
		case def.Type == Float64:
			if len(cv.Floats) != b.N {
				return fmt.Errorf("storage: table %s column %s: %d floats, want %d", t.name, def.Name, len(cv.Floats), b.N)
			}
			floats[i] = cv.Floats
		case def.Type == String:
			if len(cv.Strings) != b.N {
				return fmt.Errorf("storage: table %s column %s: %d strings, want %d", t.name, def.Name, len(cv.Strings), b.N)
			}
			codes := make([]int64, b.N)
			d := t.dicts[i]
			for j, s := range cv.Strings {
				codes[j] = d.Code(s)
			}
			ints[i] = codes
		default:
			if len(cv.Ints) != b.N {
				return fmt.Errorf("storage: table %s column %s: %d ints, want %d", t.name, def.Name, len(cv.Ints), b.N)
			}
			ints[i] = cv.Ints
		}
	}
	rowVals := make([]int64, len(t.schema))
	rowFloats := make([]float64, len(t.schema))
	for start := 0; start < b.N; start += BlockSize {
		end := start + BlockSize
		if end > b.N {
			end = b.N
		}
		sl := t.slices[t.nextChunk%len(t.slices)]
		t.nextChunk++
		for r := start; r < end; r++ {
			for c := range t.schema {
				if floats[c] != nil {
					rowFloats[c] = floats[c][r]
				} else {
					rowVals[c] = ints[c][r]
				}
			}
			sl.appendRow(rowVals, rowFloats, xid)
		}
	}
	t.version++
	return nil
}

// SortedLoad sorts the batch by the table's sort key and appends it. It is
// intended for initial loads; the table must be empty.
func (t *Table) SortedLoad(b *Batch, xid uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.slices {
		if s.numRows > 0 {
			return fmt.Errorf("storage: table %s: SortedLoad requires an empty table", t.name)
		}
	}
	if len(t.sortKey) > 0 {
		t.sortBatch(b)
	}
	if err := t.appendLocked(b, xid); err != nil {
		return err
	}
	for i, s := range t.slices {
		t.sortedRows[i] = s.numRows
	}
	return nil
}

// sortBatch reorders batch rows by the table sort key.
func (t *Table) sortBatch(b *Batch) {
	perm := make([]int, b.N)
	for i := range perm {
		perm[i] = i
	}
	keys := t.sortKey
	sort.SliceStable(perm, func(x, y int) bool {
		rx, ry := perm[x], perm[y]
		for _, k := range keys {
			cv := &b.Cols[k]
			switch t.schema[k].Type {
			case Float64:
				if cv.Floats[rx] != cv.Floats[ry] {
					return cv.Floats[rx] < cv.Floats[ry]
				}
			case String:
				if cv.Strings[rx] != cv.Strings[ry] {
					return cv.Strings[rx] < cv.Strings[ry]
				}
			default:
				if cv.Ints[rx] != cv.Ints[ry] {
					return cv.Ints[rx] < cv.Ints[ry]
				}
			}
		}
		return false
	})
	for i := range b.Cols {
		cv := &b.Cols[i]
		switch {
		case cv.Floats != nil:
			out := make([]float64, b.N)
			for j, p := range perm {
				out[j] = cv.Floats[p]
			}
			cv.Floats = out
		case cv.Strings != nil:
			out := make([]string, b.N)
			for j, p := range perm {
				out[j] = cv.Strings[p]
			}
			cv.Strings = out
		default:
			out := make([]int64, b.N)
			for j, p := range perm {
				out[j] = cv.Ints[p]
			}
			cv.Ints = out
		}
	}
}

// DeleteRows marks rows of one slice deleted at xid (out-of-place delete,
// §4.3.2). Row numbers do not change; scans eliminate the rows via the
// visibility check, so predicate-cache entries remain valid.
func (t *Table) DeleteRows(slice int, rows []int, xid uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.slices[slice]
	for _, r := range rows {
		s.deleteRow(r, xid)
	}
	t.version++
	t.deleteOps++
}

// DeleteOps returns the number of DELETE statements executed.
func (t *Table) DeleteOps() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.deleteOps
}

// BumpVersion records a DML statement that did not change any rows (e.g. an
// UPDATE matching zero rows still invalidates result-cache entries in the
// paper's model).
func (t *Table) BumpVersion() {
	t.mu.Lock()
	t.version++
	t.mu.Unlock()
}

// Vacuum reclaims rows that were deleted at or before horizon, merges the
// insert buffer, and re-sorts if the table has a sort key. Physical row
// numbers change, so the layout epoch is bumped — the event that invalidates
// predicate-cache entries (§4.3.2).
func (t *Table) Vacuum(horizon uint64) {
	t.layoutGate.Lock()
	defer t.layoutGate.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()

	// Materialize all surviving rows columnar, then rebuild.
	total := 0
	for _, s := range t.slices {
		total += s.numRows
	}
	b := NewBatch(t.schema)
	for i, def := range t.schema {
		switch def.Type {
		case Float64:
			b.Cols[i].Floats = make([]float64, 0, total)
		case String:
			b.Cols[i].Strings = make([]string, 0, total)
		default:
			b.Cols[i].Ints = make([]int64, 0, total)
		}
	}
	var xids, delXIDs []uint64
	iScratch := make([]int64, BlockSize)
	fScratch := make([]float64, BlockSize)
	for _, s := range t.slices {
		for blk := 0; blk*BlockSize < s.numRows; blk++ {
			base := blk * BlockSize
			n := s.numRows - base
			if n > BlockSize {
				n = BlockSize
			}
			for r := 0; r < n; r++ {
				row := base + r
				d := s.deleteXID[row]
				if d != 0 && d <= horizon {
					continue // globally invisible: reclaim
				}
				for ci, def := range t.schema {
					c := s.cols[ci]
					switch def.Type {
					case Float64:
						b.Cols[ci].Floats = append(b.Cols[ci].Floats, c.FloatAt(row, fScratch))
					case String:
						code := c.IntAt(row, iScratch)
						b.Cols[ci].Strings = append(b.Cols[ci].Strings, t.dicts[ci].Value(code))
					default:
						b.Cols[ci].Ints = append(b.Cols[ci].Ints, c.IntAt(row, iScratch))
					}
				}
				xids = append(xids, s.insertXID[row])
				delXIDs = append(delXIDs, d)
				b.N++
			}
		}
	}

	if len(t.sortKey) > 0 {
		// Sort rows and carry xids along by embedding them as a shadow
		// column: sortBatch permutes b only, so permute xids with the same
		// comparison by sorting an index permutation here instead.
		perm := make([]int, b.N)
		for i := range perm {
			perm[i] = i
		}
		keys := t.sortKey
		sort.SliceStable(perm, func(x, y int) bool {
			rx, ry := perm[x], perm[y]
			for _, k := range keys {
				cv := &b.Cols[k]
				switch t.schema[k].Type {
				case Float64:
					if cv.Floats[rx] != cv.Floats[ry] {
						return cv.Floats[rx] < cv.Floats[ry]
					}
				case String:
					if cv.Strings[rx] != cv.Strings[ry] {
						return cv.Strings[rx] < cv.Strings[ry]
					}
				default:
					if cv.Ints[rx] != cv.Ints[ry] {
						return cv.Ints[rx] < cv.Ints[ry]
					}
				}
			}
			return false
		})
		applyPermBatch(b, perm, t.schema)
		nx := make([]uint64, b.N)
		nd := make([]uint64, b.N)
		for j, p := range perm {
			nx[j] = xids[p]
			nd[j] = delXIDs[p]
		}
		xids, delXIDs = nx, nd
	}

	// Rebuild slices.
	for i := range t.slices {
		t.slices[i] = newSlice(t.schema, t.dicts)
	}
	t.nextChunk = 0
	rowVals := make([]int64, len(t.schema))
	rowFloats := make([]float64, len(t.schema))
	for start := 0; start < b.N; start += BlockSize {
		end := start + BlockSize
		if end > b.N {
			end = b.N
		}
		sl := t.slices[t.nextChunk%len(t.slices)]
		t.nextChunk++
		for r := start; r < end; r++ {
			for c, def := range t.schema {
				switch def.Type {
				case Float64:
					rowFloats[c] = b.Cols[c].Floats[r]
				case String:
					rowVals[c] = t.dicts[c].Code(b.Cols[c].Strings[r])
				default:
					rowVals[c] = b.Cols[c].Ints[r]
				}
			}
			sl.appendRow(rowVals, rowFloats, xids[r])
			if delXIDs[r] != 0 {
				sl.deleteXID[sl.numRows-1] = delXIDs[r]
			}
		}
	}
	for i, s := range t.slices {
		t.sortedRows[i] = s.numRows
		assertSliceMVCC(s, "Table.Vacuum")
	}
	t.layoutEpoch++
	t.version++
}

func applyPermBatch(b *Batch, perm []int, schema Schema) {
	for i := range b.Cols {
		cv := &b.Cols[i]
		switch schema[i].Type {
		case Float64:
			out := make([]float64, b.N)
			for j, p := range perm {
				out[j] = cv.Floats[p]
			}
			cv.Floats = out
		case String:
			out := make([]string, b.N)
			for j, p := range perm {
				out[j] = cv.Strings[p]
			}
			cv.Strings = out
		default:
			out := make([]int64, b.N)
			for j, p := range perm {
				out[j] = cv.Ints[p]
			}
			cv.Ints = out
		}
	}
}

// MemBytes approximates the table's total memory footprint.
func (t *Table) MemBytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, s := range t.slices {
		n += s.MemBytes()
	}
	for _, d := range t.dicts {
		if d != nil {
			n += d.MemBytes()
		}
	}
	return n
}

// ZoneMapBytes returns the total size of all per-block zone maps.
func (t *Table) ZoneMapBytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, s := range t.slices {
		for _, c := range s.cols {
			n += c.ZoneMapBytes()
		}
	}
	return n
}

// ColumnType returns the type of column i.
func (t *Table) ColumnType(i int) ColumnType { return t.schema[i].Type }

// DistinctCount returns the exact number of distinct values in an
// integer-representation column, computed once and cached per (column,
// version). The planner uses it to estimate join fanout (rows / distinct
// keys) when ordering joins.
func (t *Table) DistinctCount(col int) int {
	t.mu.RLock()
	if t.distinctCache != nil {
		if e, ok := t.distinctCache[col]; ok && e.version == t.version {
			t.mu.RUnlock()
			return e.count
		}
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.distinctCache == nil {
		t.distinctCache = make(map[int]distinctEntry)
	}
	if e, ok := t.distinctCache[col]; ok && e.version == t.version {
		return e.count
	}
	set := make(map[int64]struct{})
	if t.schema[col].Type == Float64 {
		// Float columns are never join keys; treat as all-distinct.
		n := 0
		for _, s := range t.slices {
			n += s.numRows
		}
		t.distinctCache[col] = distinctEntry{version: t.version, count: n}
		return n
	}
	scratch := make([]int64, BlockSize)
	for _, s := range t.slices {
		c := s.cols[col]
		for blk := 0; blk*BlockSize < s.numRows; blk++ {
			n := c.ReadIntBlock(blk, scratch)
			for i := 0; i < n; i++ {
				set[scratch[i]] = struct{}{}
			}
		}
	}
	t.distinctCache[col] = distinctEntry{version: t.version, count: len(set)}
	return len(set)
}
