package storage

import "fmt"

// Block is one sealed, compressed run of up to BlockSize values of a single
// column, together with its zone map (min-max bounds, §4.2.2 step 1).
type Block struct {
	N       int      // number of values
	Enc     Encoding // physical encoding (integer representations only)
	Words   []uint64 // payload for integer encodings
	Floats  []float64
	MinI    int64 // zone map for integer representations
	MaxI    int64
	MinF    float64 // zone map for float columns
	MaxF    float64
	isFloat bool
}

// MemBytes returns the approximate in-memory size of the block payload.
func (b *Block) MemBytes() int {
	return len(b.Words)*8 + len(b.Floats)*8
}

// ColumnStore holds all values of one column of one data slice: a list of
// sealed compressed blocks plus an open tail buffer that absorbs appends
// (the per-column view of the insert buffer, §4.3.1).
type ColumnStore struct {
	Typ    ColumnType
	blocks []*Block

	// Open tail: values appended since the last block was sealed.
	tailInts   []int64
	tailFloats []float64

	// Dictionary for string columns (shared across blocks of this store's
	// table column; see Table.dicts). Values stored here are dict codes.
	dict *Dict
}

// Dict is an order-of-first-appearance string dictionary. Codes are dense
// int64s. Because codes are not order-preserving, zone maps on string
// columns are only useful for equality predicates.
type Dict struct {
	vals  []string
	index map[string]int64
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{index: make(map[string]int64)}
}

// Code returns the code for s, adding it if new.
func (d *Dict) Code(s string) int64 {
	if c, ok := d.index[s]; ok {
		return c
	}
	c := int64(len(d.vals))
	d.vals = append(d.vals, s)
	d.index[s] = c
	return c
}

// Lookup returns the code for s and whether it exists.
func (d *Dict) Lookup(s string) (int64, bool) {
	c, ok := d.index[s]
	return c, ok
}

// Value returns the string for a code.
func (d *Dict) Value(code int64) string { return d.vals[code] }

// Len returns the number of distinct values.
func (d *Dict) Len() int { return len(d.vals) }

// MemBytes approximates the dictionary's memory footprint.
func (d *Dict) MemBytes() int {
	n := 0
	for _, v := range d.vals {
		n += len(v) + 16 // string header
	}
	return n + len(d.vals)*24 // map entries, rough
}

func newColumnStore(typ ColumnType, dict *Dict) *ColumnStore {
	return &ColumnStore{Typ: typ, dict: dict}
}

// Len returns the number of values in the column store.
func (c *ColumnStore) Len() int {
	n := 0
	for _, b := range c.blocks {
		n += b.N
	}
	if c.Typ == Float64 {
		return n + len(c.tailFloats)
	}
	return n + len(c.tailInts)
}

// NumBlocks returns the number of blocks, counting the open tail as one.
func (c *ColumnStore) NumBlocks() int {
	n := len(c.blocks)
	if len(c.tailInts) > 0 || len(c.tailFloats) > 0 {
		n++
	}
	return n
}

// appendInt adds one integer-representation value.
func (c *ColumnStore) appendInt(v int64) {
	c.tailInts = append(c.tailInts, v)
	if len(c.tailInts) == BlockSize {
		c.seal()
	}
}

// appendFloat adds one float value.
func (c *ColumnStore) appendFloat(v float64) {
	c.tailFloats = append(c.tailFloats, v)
	if len(c.tailFloats) == BlockSize {
		c.seal()
	}
}

// seal compresses the open tail into a block.
func (c *ColumnStore) seal() {
	if c.Typ == Float64 {
		if len(c.tailFloats) == 0 {
			return
		}
		min, max := c.tailFloats[0], c.tailFloats[0]
		for _, v := range c.tailFloats[1:] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		assertZoneMapFloat(min, max, "ColumnStore.seal")
		data := make([]float64, len(c.tailFloats))
		copy(data, c.tailFloats)
		c.blocks = append(c.blocks, &Block{N: len(data), Floats: data, MinF: min, MaxF: max, isFloat: true})
		c.tailFloats = c.tailFloats[:0]
		return
	}
	if len(c.tailInts) == 0 {
		return
	}
	min, max := c.tailInts[0], c.tailInts[0]
	for _, v := range c.tailInts[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	assertZoneMapInt(min, max, "ColumnStore.seal")
	enc, words := encodeInts(c.tailInts, min, max)
	c.blocks = append(c.blocks, &Block{N: len(c.tailInts), Enc: enc, Words: words, MinI: min, MaxI: max})
	c.tailInts = c.tailInts[:0]
}

// blockAt returns the index of the block containing row, assuming all sealed
// blocks are full (BlockSize rows) except possibly the tail. Appends always
// seal exactly at BlockSize, so this invariant holds.
func (c *ColumnStore) blockAt(row int) int { return row / BlockSize }

// ReadIntBlock decompresses block i into dst (must have cap >= BlockSize)
// and returns the number of values. Block indexes past the sealed blocks
// refer to the open tail.
func (c *ColumnStore) ReadIntBlock(i int, dst []int64) int {
	if i < len(c.blocks) {
		b := c.blocks[i]
		decodeInts(b.Enc, b.Words, b.N, b.MinI, b.MaxI, dst)
		return b.N
	}
	return copy(dst, c.tailInts)
}

// ReadFloatBlock decompresses float block i into dst.
func (c *ColumnStore) ReadFloatBlock(i int, dst []float64) int {
	if i < len(c.blocks) {
		b := c.blocks[i]
		return copy(dst, b.Floats)
	}
	return copy(dst, c.tailFloats)
}

// IntBounds returns the zone-map bounds of block i (tail included).
func (c *ColumnStore) IntBounds(i int) (min, max int64, ok bool) {
	if i < len(c.blocks) {
		b := c.blocks[i]
		assertZoneMapInt(b.MinI, b.MaxI, "ColumnStore.IntBounds")
		return b.MinI, b.MaxI, true
	}
	if len(c.tailInts) == 0 {
		return 0, 0, false
	}
	min, max = c.tailInts[0], c.tailInts[0]
	for _, v := range c.tailInts[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, true
}

// FloatBounds returns the zone-map bounds of float block i.
func (c *ColumnStore) FloatBounds(i int) (min, max float64, ok bool) {
	if i < len(c.blocks) {
		b := c.blocks[i]
		assertZoneMapFloat(b.MinF, b.MaxF, "ColumnStore.FloatBounds")
		return b.MinF, b.MaxF, true
	}
	if len(c.tailFloats) == 0 {
		return 0, 0, false
	}
	min, max = c.tailFloats[0], c.tailFloats[0]
	for _, v := range c.tailFloats[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, true
}

// IntAt returns the value at row (slow path for point accesses).
func (c *ColumnStore) IntAt(row int, scratch []int64) int64 {
	bi := c.blockAt(row)
	if bi < len(c.blocks) {
		n := c.ReadIntBlock(bi, scratch)
		_ = n
		return scratch[row-bi*BlockSize]
	}
	return c.tailInts[row-len(c.blocks)*BlockSize]
}

// FloatAt returns the float value at row.
func (c *ColumnStore) FloatAt(row int, scratch []float64) float64 {
	bi := c.blockAt(row)
	if bi < len(c.blocks) {
		c.ReadFloatBlock(bi, scratch)
		return scratch[row-bi*BlockSize]
	}
	return c.tailFloats[row-len(c.blocks)*BlockSize]
}

// MemBytes approximates the memory footprint of the column store, excluding
// the shared dictionary.
func (c *ColumnStore) MemBytes() int {
	n := len(c.tailInts)*8 + len(c.tailFloats)*8
	for _, b := range c.blocks {
		n += b.MemBytes()
	}
	return n
}

// ZoneMapBytes returns the size of the zone maps alone: two 8-byte bounds
// per block (the "ZoneMap" row of Table 3).
func (c *ColumnStore) ZoneMapBytes() int { return c.NumBlocks() * 16 }

func (c *ColumnStore) String() string {
	return fmt.Sprintf("column{%s, %d rows, %d blocks}", c.Typ, c.Len(), c.NumBlocks())
}
