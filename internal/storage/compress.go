package storage

import "math/bits"

// Encoding identifies the physical compression of one block. Redshift
// implements "compression techniques like frame-of-reference, run-length
// encoding, or dictionary compression" (§4.2.2); strings are dictionary
// encoded at the column level, and every integer block independently picks
// the cheapest of the remaining encodings.
type Encoding uint8

const (
	// EncRaw stores values verbatim.
	EncRaw Encoding = iota
	// EncRLE stores (value, runLength) pairs.
	EncRLE
	// EncFOR stores a frame-of-reference base plus fixed-width bit-packed
	// deltas.
	EncFOR
)

func (e Encoding) String() string {
	switch e {
	case EncRaw:
		return "raw"
	case EncRLE:
		return "rle"
	case EncFOR:
		return "for"
	}
	return "unknown"
}

// rleSize returns the number of (value,run) pairs RLE would need.
func rleSize(vals []int64) int {
	if len(vals) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			runs++
		}
	}
	return runs
}

// forWidth returns the bit width needed to encode values in [min, max]
// relative to min. The subtraction is exact in two's-complement wrapping
// arithmetic even when max-min overflows int64.
func forWidth(min, max int64) int {
	return bits.Len64(uint64(max) - uint64(min))
}

// encodeInts compresses vals into a fresh payload, choosing the smallest of
// raw, RLE, and FOR. min/max are the already-computed bounds of vals.
func encodeInts(vals []int64, min, max int64) (Encoding, []uint64) {
	n := len(vals)
	rawWords := n
	runs := rleSize(vals)
	rleWords := runs * 2
	width := forWidth(min, max)
	forWords := (n*width+63)/64 + 1 // +1 word for the base
	switch {
	case rleWords < rawWords && rleWords <= forWords:
		out := make([]uint64, 0, rleWords)
		i := 0
		for i < n {
			j := i + 1
			for j < n && vals[j] == vals[i] {
				j++
			}
			out = append(out, uint64(vals[i]), uint64(j-i))
			i = j
		}
		return EncRLE, out
	case forWords < rawWords:
		out := make([]uint64, forWords)
		out[0] = uint64(min)
		if width > 0 {
			packBits(out[1:], vals, min, width)
		}
		return EncFOR, out
	default:
		out := make([]uint64, n)
		for i, v := range vals {
			out[i] = uint64(v)
		}
		return EncRaw, out
	}
}

// packBits writes (vals[i]-base) as width-bit little-endian fields into dst.
func packBits(dst []uint64, vals []int64, base int64, width int) {
	bitPos := 0
	for _, v := range vals {
		d := uint64(v - base)
		word := bitPos >> 6
		off := bitPos & 63
		dst[word] |= d << off
		if off+width > 64 {
			dst[word+1] |= d >> (64 - off)
		}
		bitPos += width
	}
}

// unpackBits reads n width-bit fields from src and writes base+field to dst.
func unpackBits(dst []int64, src []uint64, base int64, width, n int) {
	if width == 0 {
		for i := 0; i < n; i++ {
			dst[i] = base
		}
		return
	}
	mask := ^uint64(0) >> (64 - width)
	bitPos := 0
	for i := 0; i < n; i++ {
		word := bitPos >> 6
		off := bitPos & 63
		d := src[word] >> off
		if off+width > 64 {
			d |= src[word+1] << (64 - off)
		}
		dst[i] = base + int64(d&mask)
		bitPos += width
	}
}

// unpackBitsFrom reads n width-bit fields starting at field index start and
// writes base+field to dst. width must be > 0 (callers handle constant
// blocks). Seeking is O(1): the first field's bit offset is start*width.
func unpackBitsFrom(dst []int64, src []uint64, base int64, width, start, n int) {
	mask := ^uint64(0) >> (64 - width)
	bitPos := start * width
	for i := 0; i < n; i++ {
		word := bitPos >> 6
		off := bitPos & 63
		d := src[word] >> off
		if off+width > 64 {
			d |= src[word+1] << (64 - off)
		}
		dst[i] = base + int64(d&mask)
		bitPos += width
	}
}

// decodeInts decompresses a payload produced by encodeInts into dst, which
// must have room for n values.
func decodeInts(enc Encoding, payload []uint64, n int, min, max int64, dst []int64) {
	switch enc {
	case EncRaw:
		for i := 0; i < n; i++ {
			dst[i] = int64(payload[i])
		}
	case EncRLE:
		pos := 0
		for i := 0; i < len(payload); i += 2 {
			v := int64(payload[i])
			run := int(payload[i+1])
			for j := 0; j < run; j++ {
				dst[pos] = v
				pos++
			}
		}
	case EncFOR:
		base := int64(payload[0])
		unpackBits(dst[:n], payload[1:], base, forWidth(min, max), n)
	}
}
