package storage

import "sync/atomic"

// ScanStats accumulates the counters the paper's evaluation reports per
// query (Table 4): rows scanned (rows the vectorized filter actually
// evaluated) and blocks accessed (per-column block decompressions). Block
// elimination is split by mechanism: BlocksSkipped counts row blocks pruned
// by zone maps after the candidate set still included them, while
// BlocksPrunedCache counts row blocks a predicate-cache hit excluded from
// the candidate ranges entirely (the blocks the cache saved). Safe for
// concurrent use by parallel slice scans.
type ScanStats struct {
	RowsScanned       atomic.Int64
	RowsQualified     atomic.Int64
	BlocksAccessed    atomic.Int64
	BlocksSkipped     atomic.Int64
	BlocksPrunedCache atomic.Int64
	CacheHits         atomic.Int64
	CacheMisses       atomic.Int64
	// Encoding-aware kernel breakdown: of the accessed (column, block)
	// pairs, how many were actually decompressed (BlocksDecoded) versus
	// evaluated directly on their stored form (BlocksKernel counts kernel
	// evaluations), and how many values the partial decoder materialized
	// (RowsDecoded; full-block decodes count BlockSize).
	BlocksDecoded atomic.Int64
	BlocksKernel  atomic.Int64
	RowsDecoded   atomic.Int64
	// Morsel-parallel operator counters: morsels claimed by join/aggregation
	// workers and their summed busy time. WorkerNanos vs. query wall time is
	// the parallel-efficiency signal (cpu ≈ wall means the query ran serial;
	// cpu ≈ W×wall means W workers stayed busy).
	Morsels     atomic.Int64
	WorkerNanos atomic.Int64
	// WorkerExtraNanos is the busy time spawned workers contributed beyond
	// the coordinator's wall-clock wait for them: for a parallel phase with W
	// workers and summed busy time B over elapsed E, the extra is B − E
	// (≈ (W−1)×E when all workers stay busy). Query wall time plus this sum
	// is the query's attributed CPU time — the cpu_us column of pc.query_log
	// and pc.query_shapes. Serial phases contribute zero.
	WorkerExtraNanos atomic.Int64
}

// Add merges other into s.
func (s *ScanStats) Add(other *ScanStats) {
	s.RowsScanned.Add(other.RowsScanned.Load())
	s.RowsQualified.Add(other.RowsQualified.Load())
	s.BlocksAccessed.Add(other.BlocksAccessed.Load())
	s.BlocksSkipped.Add(other.BlocksSkipped.Load())
	s.BlocksPrunedCache.Add(other.BlocksPrunedCache.Load())
	s.CacheHits.Add(other.CacheHits.Load())
	s.CacheMisses.Add(other.CacheMisses.Load())
	s.BlocksDecoded.Add(other.BlocksDecoded.Load())
	s.BlocksKernel.Add(other.BlocksKernel.Load())
	s.RowsDecoded.Add(other.RowsDecoded.Load())
	s.Morsels.Add(other.Morsels.Load())
	s.WorkerNanos.Add(other.WorkerNanos.Load())
	s.WorkerExtraNanos.Add(other.WorkerExtraNanos.Load())
}

// Snapshot returns a plain-struct copy for reporting.
func (s *ScanStats) Snapshot() ScanStatsSnapshot {
	return ScanStatsSnapshot{
		RowsScanned:       s.RowsScanned.Load(),
		RowsQualified:     s.RowsQualified.Load(),
		BlocksAccessed:    s.BlocksAccessed.Load(),
		BlocksSkipped:     s.BlocksSkipped.Load(),
		BlocksPrunedCache: s.BlocksPrunedCache.Load(),
		CacheHits:         s.CacheHits.Load(),
		CacheMisses:       s.CacheMisses.Load(),
		BlocksDecoded:     s.BlocksDecoded.Load(),
		BlocksKernel:      s.BlocksKernel.Load(),
		RowsDecoded:       s.RowsDecoded.Load(),
		Morsels:           s.Morsels.Load(),
		WorkerNanos:       s.WorkerNanos.Load(),
		WorkerExtraNanos:  s.WorkerExtraNanos.Load(),
	}
}

// ScanStatsSnapshot is an immutable copy of ScanStats.
type ScanStatsSnapshot struct {
	RowsScanned       int64
	RowsQualified     int64
	BlocksAccessed    int64
	BlocksSkipped     int64
	BlocksPrunedCache int64
	CacheHits         int64
	CacheMisses       int64
	BlocksDecoded     int64
	BlocksKernel      int64
	RowsDecoded       int64
	Morsels           int64
	WorkerNanos       int64
	WorkerExtraNanos  int64
}
