// Package lake implements predicate caching over an open table format
// (§4.5 of the paper). An Iceberg/Delta-style table is an ordered set of
// immutable data files plus a manifest: writers commit by adding or
// removing whole files, never by mutating rows in place. That satisfies the
// paper's three requirements verbatim — (a) rows are uniquely identified by
// (file id, offset), (b) row identity never changes while a file lives, and
// (c) manifest commits make layout changes detectable — so a predicate
// cache can index the lake without owning its physical layout.
//
// The cache here works at two granularities, as §4.5 suggests for Parquet:
// it remembers which files qualify for a predicate (skipping whole files the
// way a query engine skips row groups), and within each qualifying file a
// bounded list of qualifying row ranges (reusing the core gap-heap builder).
// File additions extend entries; file removals need no invalidation at all —
// dropped files simply vanish from the manifest the entry is intersected
// with.
package lake

import (
	"fmt"
	"sync"

	"github.com/predcache/predcache/internal/storage"
)

// DataFile is one immutable data file of the lake table.
type DataFile struct {
	ID   uint64
	Rows int

	// Columnar payload: integer representations (dates, bools, dictionary
	// codes) and floats, indexed by schema column.
	ints   [][]int64
	floats [][]float64

	// Per-column min/max statistics (the footer stats Parquet files carry);
	// used for file-level pruning before the cache is consulted.
	minI, maxI []int64
	minF, maxF []float64
}

// Table is a lake-resident table: schema + manifest of live files.
type Table struct {
	mu sync.RWMutex
	// name, schema and the dicts header are immutable after NewTable
	// (dictionary contents grow under mu).
	name     string
	schema   storage.Schema
	dicts    []*storage.Dict
	files    []*DataFile // guarded by mu
	nextFile uint64      // guarded by mu
	snapshot uint64      // guarded by mu; bumps on every manifest commit
}

// NewTable creates an empty lake table.
func NewTable(name string, schema storage.Schema) *Table {
	t := &Table{name: name, schema: schema, dicts: make([]*storage.Dict, len(schema))}
	for i, def := range schema {
		if def.Type == storage.String {
			t.dicts[i] = storage.NewDict()
		}
	}
	return t
}

// Name implements expr.Source.
func (t *Table) Name() string { return t.name }

// ColumnIndex implements expr.Source.
func (t *Table) ColumnIndex(name string) int { return t.schema.ColumnIndex(name) }

// ColumnType implements expr.Source.
func (t *Table) ColumnType(i int) storage.ColumnType { return t.schema[i].Type }

// Dict implements expr.Source.
func (t *Table) Dict(i int) *storage.Dict { return t.dicts[i] }

// Snapshot returns the current manifest version.
func (t *Table) Snapshot() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.snapshot
}

// NumFiles returns the number of live files.
func (t *Table) NumFiles() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.files)
}

// NumRows returns the total live row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, f := range t.files {
		n += f.Rows
	}
	return n
}

// AddFile commits a new data file built from the batch and returns its id.
func (t *Table) AddFile(b *storage.Batch) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(b.Cols) != len(t.schema) {
		return 0, fmt.Errorf("lake: %s: batch has %d columns, schema has %d", t.name, len(b.Cols), len(t.schema))
	}
	f := &DataFile{
		ID:   t.nextFile + 1,
		Rows: b.N,
		ints: make([][]int64, len(t.schema)), floats: make([][]float64, len(t.schema)),
		minI: make([]int64, len(t.schema)), maxI: make([]int64, len(t.schema)),
		minF: make([]float64, len(t.schema)), maxF: make([]float64, len(t.schema)),
	}
	for ci, def := range t.schema {
		switch def.Type {
		case storage.Float64:
			if len(b.Cols[ci].Floats) != b.N {
				return 0, fmt.Errorf("lake: %s column %s: bad float vector", t.name, def.Name)
			}
			vals := append([]float64(nil), b.Cols[ci].Floats...)
			f.floats[ci] = vals
			if b.N > 0 {
				mn, mx := vals[0], vals[0]
				for _, v := range vals {
					if v < mn {
						mn = v
					}
					if v > mx {
						mx = v
					}
				}
				f.minF[ci], f.maxF[ci] = mn, mx
			}
		case storage.String:
			if len(b.Cols[ci].Strings) != b.N {
				return 0, fmt.Errorf("lake: %s column %s: bad string vector", t.name, def.Name)
			}
			codes := make([]int64, b.N)
			for i, s := range b.Cols[ci].Strings {
				codes[i] = t.dicts[ci].Code(s)
			}
			f.ints[ci] = codes
			setIntBounds(f, ci, codes)
		default:
			if len(b.Cols[ci].Ints) != b.N {
				return 0, fmt.Errorf("lake: %s column %s: bad int vector", t.name, def.Name)
			}
			vals := append([]int64(nil), b.Cols[ci].Ints...)
			f.ints[ci] = vals
			setIntBounds(f, ci, vals)
		}
	}
	t.nextFile++
	t.files = append(t.files, f)
	t.snapshot++
	return f.ID, nil
}

func setIntBounds(f *DataFile, ci int, vals []int64) {
	if len(vals) == 0 {
		return
	}
	mn, mx := vals[0], vals[0]
	for _, v := range vals {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	f.minI[ci], f.maxI[ci] = mn, mx
}

// RemoveFiles commits the removal of the given files (a delete or the
// retraction side of a compaction). Unknown ids are ignored.
func (t *Table) RemoveFiles(ids ...uint64) {
	drop := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.files[:0]
	for _, f := range t.files {
		if !drop[f.ID] {
			kept = append(kept, f)
		}
	}
	t.files = kept
	t.snapshot++
}

// FileIDs returns the live manifest.
func (t *Table) FileIDs() []uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]uint64, len(t.files))
	for i, f := range t.files {
		out[i] = f.ID
	}
	return out
}

// fileBounds adapts a file's footer statistics for zone-map pruning.
type fileBounds struct{ f *DataFile }

func (b fileBounds) IntBounds(col int) (int64, int64, bool) {
	if b.f.ints[col] == nil {
		return 0, 0, false
	}
	return b.f.minI[col], b.f.maxI[col], true
}

func (b fileBounds) FloatBounds(col int) (float64, float64, bool) {
	if b.f.floats[col] == nil {
		return 0, 0, false
	}
	return b.f.minF[col], b.f.maxF[col], true
}
