package lake

import (
	"sync"

	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

// Match identifies one qualifying row.
type Match struct {
	File uint64
	Row  int
}

// ScanStats reports the work one scan performed.
type ScanStats struct {
	FilesVisited int // files whose rows were evaluated
	FilesSkipped int // files eliminated by cache or footer stats
	RowsScanned  int
	RowsMatched  int
	CacheHit     bool
}

// fileEntry is the cached state for one (predicate, file) pair: the bounded
// qualifying row ranges produced when the file was last scanned. Because
// files are immutable, a fileEntry is valid for the file's entire lifetime.
type fileEntry struct {
	qualifies bool
	ranges    []storage.RowRange
}

// cacheEntry is one cached predicate over a lake table.
type cacheEntry struct {
	// perFile has one entry per file the predicate has ever been evaluated
	// on; files missing here (new commits) are scanned and merged in, files
	// no longer in the manifest are simply not consulted.
	perFile map[uint64]*fileEntry
}

// Cache is a predicate cache over lake tables: the §4.5 design where the
// cache indexes qualifying files and row ranges within them.
type Cache struct {
	mu        sync.Mutex
	maxRanges int                    // immutable after NewCache
	entries   map[string]*cacheEntry // guarded by mu
	hits      int64                  // guarded by mu
	misses    int64                  // guarded by mu
	extends   int64                  // guarded by mu
}

// NewCache creates a lake predicate cache; maxRanges bounds the per-file
// range lists (the row-group-granularity index §4.5 describes).
func NewCache(maxRanges int) *Cache {
	if maxRanges < 1 {
		maxRanges = 1024
	}
	return &Cache{maxRanges: maxRanges, entries: make(map[string]*cacheEntry)}
}

// Stats returns (hits, misses, extends).
func (c *Cache) Stats() (hits, misses, extends int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.extends
}

// Entries returns the number of cached predicates.
func (c *Cache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// lakeScratch owns the per-scan evaluation buffers — the BlockCtx with its
// per-column vector slots and the selection vector — recycled through a
// sync.Pool so repeated (typically cache-hit) scans allocate nothing for
// them. A scratch is private to one Scan call from acquire to release.
type lakeScratch struct {
	ctx *expr.BlockCtx
	sel []int
}

var lakeScratchPool = sync.Pool{New: func() any { return &lakeScratch{} }}

// acquireLakeScratch returns a scratch with a BlockCtx reset for numCols
// columns. dicts is shared read-only.
func acquireLakeScratch(numCols int, dicts []*storage.Dict) *lakeScratch {
	s := lakeScratchPool.Get().(*lakeScratch)
	if s.ctx == nil {
		s.ctx = expr.NewBlockCtx(numCols, dicts)
	}
	s.ctx.Reset(numCols, dicts)
	if s.sel == nil {
		s.sel = make([]int, 0, 4096)
	}
	return s
}

// release returns the scratch to the pool. The caller must not retain the
// BlockCtx or the selection vector past this call.
//
// pclint:recycled
func (s *lakeScratch) release() {
	lakeScratchPool.Put(s)
}

// Scan evaluates pred over the table, using cache (nil = cold) to skip
// non-qualifying files and rows. It returns the qualifying rows in manifest
// order.
func Scan(t *Table, pred expr.Pred, cache *Cache) ([]Match, ScanStats, error) {
	var stats ScanStats
	if pred == nil {
		pred = expr.TruePred{}
	}
	bound, err := expr.Bind(pred, t)
	if err != nil {
		return nil, stats, err
	}
	key := t.name + "|" + pred.Key()

	var entry *cacheEntry
	if cache != nil {
		cache.mu.Lock()
		var ok bool
		entry, ok = cache.entries[key]
		if ok {
			cache.hits++
			stats.CacheHit = true
		} else {
			cache.misses++
			entry = &cacheEntry{perFile: make(map[uint64]*fileEntry)}
			cache.entries[key] = entry
		}
		cache.mu.Unlock()
	}

	t.mu.RLock()
	files := append([]*DataFile(nil), t.files...)
	t.mu.RUnlock()

	scr := acquireLakeScratch(len(t.schema), t.dicts)
	ctx := scr.ctx
	var out []Match
	sel := scr.sel[:0]
	for _, f := range files {
		var fe *fileEntry
		if entry != nil {
			if cache != nil {
				cache.mu.Lock()
				fe = entry.perFile[f.ID]
				cache.mu.Unlock()
			}
		}
		if fe != nil && !fe.qualifies {
			stats.FilesSkipped++
			continue
		}
		// Footer-statistics pruning (file-level zone maps) for files the
		// cache has no verdict on.
		if fe == nil && bound.Prune(fileBounds{f}) {
			stats.FilesSkipped++
			if entry != nil && cache != nil {
				cache.mu.Lock()
				entry.perFile[f.ID] = &fileEntry{qualifies: false}
				cache.mu.Unlock()
			}
			continue
		}

		// Candidate rows: the cached ranges, or the whole file.
		for ci := range t.schema {
			if f.ints[ci] != nil {
				ctx.SetInt(ci, f.ints[ci])
			} else {
				ctx.SetFloat(ci, f.floats[ci])
			}
		}
		ctx.N = f.Rows
		sel = sel[:0]
		if fe != nil {
			for _, r := range fe.ranges {
				for row := r.Start; row < r.End; row++ {
					sel = append(sel, row)
				}
			}
		} else {
			for row := 0; row < f.Rows; row++ {
				sel = append(sel, row)
			}
		}
		stats.FilesVisited++
		stats.RowsScanned += len(sel)
		matched := bound.Eval(ctx, sel)
		for _, row := range matched {
			out = append(out, Match{File: f.ID, Row: row})
		}
		stats.RowsMatched += len(matched)

		// Record the verdict for newly evaluated files.
		if entry != nil && fe == nil && cache != nil {
			nfe := &fileEntry{qualifies: len(matched) > 0}
			if nfe.qualifies {
				rb := core.NewRangeBuilder(cache.maxRanges)
				i := 0
				for i < len(matched) {
					j := i + 1
					for j < len(matched) && matched[j] == matched[j-1]+1 {
						j++
					}
					rb.Add(matched[i], matched[j-1]+1)
					i = j
				}
				nfe.ranges = rb.Finish()
			}
			cache.mu.Lock()
			entry.perFile[f.ID] = nfe
			cache.extends++
			cache.mu.Unlock()
		}
	}
	// Recapture the (possibly grown) selection vector before recycling.
	scr.sel = sel[:0]
	scr.release()
	return out, stats, nil
}
