package lake

import (
	"math/rand"
	"testing"

	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

func lakeSchema() storage.Schema {
	return storage.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "city", Type: storage.String},
		{Name: "km", Type: storage.Float64},
	}
}

// mkFile builds a file of n rows for one city with ids in [base, base+n).
func mkFile(city string, base, n int, r *rand.Rand) *storage.Batch {
	b := storage.NewBatch(lakeSchema())
	for i := 0; i < n; i++ {
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(base+i))
		b.Cols[1].Strings = append(b.Cols[1].Strings, city)
		b.Cols[2].Floats = append(b.Cols[2].Floats, float64(r.Intn(1000))/10)
	}
	b.N = n
	return b
}

// naive returns the reference matches.
func naive(t *testing.T, tbl *Table, pred expr.Pred) []Match {
	t.Helper()
	out, _, err := Scan(tbl, pred, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAddRemoveFiles(t *testing.T) {
	tbl := NewTable("trips", lakeSchema())
	r := rand.New(rand.NewSource(1))
	id1, err := tbl.AddFile(mkFile("berlin", 0, 100, r))
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := tbl.AddFile(mkFile("munich", 100, 100, r))
	if tbl.NumFiles() != 2 || tbl.NumRows() != 200 {
		t.Fatal("manifest wrong")
	}
	s0 := tbl.Snapshot()
	tbl.RemoveFiles(id1)
	if tbl.NumFiles() != 1 || tbl.Snapshot() == s0 {
		t.Fatal("remove failed")
	}
	ids := tbl.FileIDs()
	if len(ids) != 1 || ids[0] != id2 {
		t.Fatalf("manifest %v", ids)
	}
	// Bad batches rejected.
	if _, err := tbl.AddFile(storage.NewBatch(storage.Schema{{Name: "x", Type: storage.Int64}})); err == nil {
		t.Fatal("bad schema accepted")
	}
	bad := storage.NewBatch(lakeSchema())
	bad.N = 5
	if _, err := tbl.AddFile(bad); err == nil {
		t.Fatal("bad vectors accepted")
	}
}

func TestScanMatchesReference(t *testing.T) {
	tbl := NewTable("trips", lakeSchema())
	r := rand.New(rand.NewSource(2))
	cities := []string{"berlin", "munich", "hamburg"}
	for i := 0; i < 9; i++ {
		if _, err := tbl.AddFile(mkFile(cities[i%3], i*500, 500, r)); err != nil {
			t.Fatal(err)
		}
	}
	pred := expr.And(expr.Cmp("city", expr.Eq, expr.Str("munich")), expr.Cmp("km", expr.Gt, expr.Float(90)))
	cache := NewCache(64)
	cold, coldStats, err := Scan(tbl, pred, cache)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.CacheHit {
		t.Fatal("first scan hit")
	}
	want := naive(t, tbl, pred)
	if !sameMatches(cold, want) {
		t.Fatal("cold scan mismatch")
	}
	warm, warmStats, err := Scan(tbl, pred, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !warmStats.CacheHit {
		t.Fatal("second scan missed")
	}
	if !sameMatches(warm, want) {
		t.Fatal("warm scan mismatch")
	}
	// The cache must restrict scanning to qualifying rows (few false
	// positives from bounded ranges) and skip the other cities' files
	// entirely.
	if warmStats.RowsScanned >= coldStats.RowsScanned/2 {
		t.Fatalf("no scan reduction: %d vs %d", warmStats.RowsScanned, coldStats.RowsScanned)
	}
	if warmStats.FilesSkipped < 6 {
		t.Fatalf("files skipped %d want >= 6", warmStats.FilesSkipped)
	}
}

func TestFileAppendExtendsEntry(t *testing.T) {
	tbl := NewTable("trips", lakeSchema())
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 4; i++ {
		tbl.AddFile(mkFile("berlin", i*100, 100, r))
	}
	pred := expr.Cmp("km", expr.Lt, expr.Float(5))
	cache := NewCache(64)
	if _, _, err := Scan(tbl, pred, cache); err != nil {
		t.Fatal(err)
	}
	// Another writer commits two more files.
	tbl.AddFile(mkFile("berlin", 400, 100, r))
	tbl.AddFile(mkFile("munich", 500, 100, r))

	got, stats, err := Scan(tbl, pred, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CacheHit {
		t.Fatal("entry lost after append")
	}
	if !sameMatches(got, naive(t, tbl, pred)) {
		t.Fatal("post-append mismatch")
	}
	// Only the two new files (200 rows) plus cached qualifying rows are
	// visited.
	if stats.RowsScanned > 200+stats.RowsMatched+64 {
		t.Fatalf("scanned too much after append: %d", stats.RowsScanned)
	}
}

func TestFileRemovalNeedsNoInvalidation(t *testing.T) {
	tbl := NewTable("trips", lakeSchema())
	r := rand.New(rand.NewSource(4))
	var ids []uint64
	for i := 0; i < 6; i++ {
		id, _ := tbl.AddFile(mkFile("berlin", i*100, 100, r))
		ids = append(ids, id)
	}
	pred := expr.Cmp("km", expr.Gt, expr.Float(50))
	cache := NewCache(64)
	if _, _, err := Scan(tbl, pred, cache); err != nil {
		t.Fatal(err)
	}
	tbl.RemoveFiles(ids[1], ids[3])
	got, stats, err := Scan(tbl, pred, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CacheHit {
		t.Fatal("removal invalidated the entry (must not)")
	}
	if !sameMatches(got, naive(t, tbl, pred)) {
		t.Fatal("post-removal mismatch")
	}
	for _, m := range got {
		if m.File == ids[1] || m.File == ids[3] {
			t.Fatal("match from removed file")
		}
	}
}

func TestFooterStatsPruneFiles(t *testing.T) {
	tbl := NewTable("trips", lakeSchema())
	r := rand.New(rand.NewSource(5))
	// Files with disjoint id ranges: footer stats alone prune.
	for i := 0; i < 8; i++ {
		tbl.AddFile(mkFile("berlin", i*1000, 1000, r))
	}
	pred := expr.Between("id", expr.Int(2500), expr.Int(2600))
	_, stats, err := Scan(tbl, pred, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesVisited != 1 || stats.FilesSkipped != 7 {
		t.Fatalf("visited %d skipped %d", stats.FilesVisited, stats.FilesSkipped)
	}
}

func TestCacheCorrectUnderChurnQuick(t *testing.T) {
	tbl := NewTable("trips", lakeSchema())
	r := rand.New(rand.NewSource(6))
	cache := NewCache(16)
	var live []uint64
	nextBase := 0
	preds := []expr.Pred{
		expr.Cmp("km", expr.Gt, expr.Float(80)),
		expr.Cmp("city", expr.Eq, expr.Str("munich")),
		expr.And(expr.Cmp("city", expr.Eq, expr.Str("berlin")), expr.Cmp("km", expr.Lt, expr.Float(10))),
	}
	cities := []string{"berlin", "munich"}
	for step := 0; step < 40; step++ {
		switch r.Intn(3) {
		case 0, 1: // add a file
			id, err := tbl.AddFile(mkFile(cities[r.Intn(2)], nextBase, 50+r.Intn(100), r))
			if err != nil {
				t.Fatal(err)
			}
			nextBase += 200
			live = append(live, id)
		case 2: // remove a random file
			if len(live) > 0 {
				i := r.Intn(len(live))
				tbl.RemoveFiles(live[i])
				live = append(live[:i], live[i+1:]...)
			}
		}
		p := preds[r.Intn(len(preds))]
		got, _, err := Scan(tbl, p, cache)
		if err != nil {
			t.Fatal(err)
		}
		if !sameMatches(got, naive(t, tbl, p)) {
			t.Fatalf("step %d (%s): cached scan diverged", step, p.Key())
		}
	}
	hits, misses, _ := cache.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("hits %d misses %d", hits, misses)
	}
	if cache.Entries() != len(preds) {
		t.Fatalf("entries %d", cache.Entries())
	}
}
