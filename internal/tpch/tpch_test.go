package tpch

import (
	"math/rand"
	"testing"

	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/storage"
)

func loadTest(t testing.TB, skewed bool) (*storage.Catalog, *Data) {
	t.Helper()
	d := Generate(Config{SF: 0.002, Skewed: skewed, Seed: 42})
	cat := storage.NewCatalog()
	if err := d.Load(cat, 2); err != nil {
		t.Fatal(err)
	}
	return cat, d
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{SF: 0.001, Seed: 7})
	b := Generate(Config{SF: 0.001, Seed: 7})
	for _, name := range TableNames() {
		if a.Rows(name) != b.Rows(name) {
			t.Fatalf("%s: %d vs %d rows", name, a.Rows(name), b.Rows(name))
		}
	}
	// A different seed changes lineitem contents.
	c := Generate(Config{SF: 0.001, Seed: 8})
	same := true
	av := a.Batches["lineitem"].Cols[4].Ints
	cv := c.Batches["lineitem"].Cols[4].Ints
	for i := 0; i < min(len(av), len(cv)); i++ {
		if av[i] != cv[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed has no effect")
	}
}

func TestGenerateScaling(t *testing.T) {
	small := Generate(Config{SF: 0.001, Seed: 1})
	big := Generate(Config{SF: 0.004, Seed: 1})
	if big.Rows("orders") <= small.Rows("orders") {
		t.Fatal("orders does not scale")
	}
	if big.Rows("lineitem") <= big.Rows("orders") {
		t.Fatal("lineitem should exceed orders")
	}
	if small.Rows("region") != 5 || small.Rows("nation") != 25 {
		t.Fatal("fixed tables wrong")
	}
	if small.Rows("partsupp") != 4*small.Rows("part") {
		t.Fatal("partsupp != 4x part")
	}
}

func TestReferentialIntegrity(t *testing.T) {
	d := Generate(Config{SF: 0.002, Seed: 3})
	nOrd := d.Rows("orders")
	nPart := d.Rows("part")
	nSupp := d.Rows("supplier")
	nCust := d.Rows("customer")
	lb := d.Batches["lineitem"]
	for i := 0; i < lb.N; i++ {
		if k := lb.Cols[0].Ints[i]; k < 1 || k > int64(nOrd) {
			t.Fatalf("l_orderkey %d out of range", k)
		}
		if k := lb.Cols[1].Ints[i]; k < 1 || k > int64(nPart) {
			t.Fatalf("l_partkey %d out of range", k)
		}
		if k := lb.Cols[2].Ints[i]; k < 1 || k > int64(nSupp) {
			t.Fatalf("l_suppkey %d out of range", k)
		}
		if lb.Cols[10].Ints[i] >= lb.Cols[12].Ints[i] {
			t.Fatal("receiptdate not after shipdate")
		}
		if q := lb.Cols[4].Ints[i]; q < 1 || q > 50 {
			t.Fatalf("quantity %d", q)
		}
		if disc := lb.Cols[6].Floats[i]; disc < 0 || disc > 0.10 {
			t.Fatalf("discount %f", disc)
		}
	}
	ob := d.Batches["orders"]
	for i := 0; i < ob.N; i++ {
		if k := ob.Cols[1].Ints[i]; k < 1 || k > int64(nCust) {
			t.Fatalf("o_custkey %d out of range", k)
		}
	}
}

func TestSkewConcentratesValues(t *testing.T) {
	uni := Generate(Config{SF: 0.002, Seed: 5, Skewed: false})
	skw := Generate(Config{SF: 0.002, Seed: 5, Skewed: true})
	topShare := func(d *Data) float64 {
		counts := map[int64]int{}
		vals := d.Batches["lineitem"].Cols[1].Ints // l_partkey
		for _, v := range vals {
			counts[v]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(len(vals))
	}
	if topShare(skw) < 4*topShare(uni) {
		t.Fatalf("skew too weak: top part share %.4f vs uniform %.4f", topShare(skw), topShare(uni))
	}
	// Skewed orders arrive in date order.
	dates := skw.Batches["orders"].Cols[4].Ints
	for i := 1; i < len(dates); i++ {
		if dates[i] < dates[i-1] {
			t.Fatal("skewed orders not date-ordered")
		}
	}
}

func TestAll22QueriesExecute(t *testing.T) {
	cat, _ := loadTest(t, false)
	qs := Queries(DefaultParams())
	if len(qs) != 22 {
		t.Fatalf("%d queries", len(qs))
	}
	for _, q := range qs {
		plan, err := q.Plan(cat)
		if err != nil {
			t.Fatalf("Q%d plan: %v", q.ID, err)
		}
		ec := &engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}}
		rel, err := plan.Execute(ec)
		if err != nil {
			t.Fatalf("Q%d exec: %v", q.ID, err)
		}
		if rel == nil {
			t.Fatalf("Q%d nil result", q.ID)
		}
		if q.Text() == "" {
			t.Fatalf("Q%d empty text", q.ID)
		}
	}
}

func TestQueriesRepeatableAndCacheable(t *testing.T) {
	cat, _ := loadTest(t, true)
	cache := core.NewCache(core.DefaultConfig())
	qs := Queries(DefaultParams())
	for _, q := range qs {
		plan, err := q.Plan(cat)
		if err != nil {
			t.Fatalf("Q%d: %v", q.ID, err)
		}
		run := func() (*engine.Relation, *storage.ScanStats) {
			st := &storage.ScanStats{}
			ec := &engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: st, Cache: cache}
			rel, err := plan.Execute(ec)
			if err != nil {
				t.Fatalf("Q%d: %v", q.ID, err)
			}
			return rel, st
		}
		r1, _ := run()
		r2, s2 := run()
		if r1.NumRows() != r2.NumRows() {
			t.Fatalf("Q%d: cached run changed row count %d -> %d", q.ID, r1.NumRows(), r2.NumRows())
		}
		// Spot-check first-cell stability.
		if r1.NumRows() > 0 && r1.NumCols() > 0 {
			if r1.StringValue(0, 0) != r2.StringValue(0, 0) {
				t.Fatalf("Q%d: first cell changed", q.ID)
			}
		}
		if s2.CacheHits.Load() == 0 && s2.CacheMisses.Load() > 0 {
			t.Fatalf("Q%d: repeated run missed the cache entirely", q.ID)
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("no hits across suite: %+v", st)
	}
}

func TestQ6MatchesReference(t *testing.T) {
	cat, d := loadTest(t, false)
	p := DefaultParams()
	q := Queries(p)[5]
	if q.ID != 6 {
		t.Fatal("query order")
	}
	plan, err := q.Plan(cat)
	if err != nil {
		t.Fatal(err)
	}
	ec := &engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot()}
	rel, err := plan.Execute(ec)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := storage.ParseDate(p.Q6Date)
	hi := storage.DateFromYMD(1997, 1, 1)
	var want float64
	lb := d.Batches["lineitem"]
	for i := 0; i < lb.N; i++ {
		ship := lb.Cols[10].Ints[i]
		disc := lb.Cols[6].Floats[i]
		qty := lb.Cols[4].Ints[i]
		if ship >= lo && ship < hi && disc >= p.Q6Discount-0.011 && disc <= p.Q6Discount+0.011 && qty < int64(p.Q6Quantity) {
			// between is inclusive with float equality; generator uses exact
			// hundredths so direct comparison works:
			if disc >= p.Q6Discount-0.01-1e-9 && disc <= p.Q6Discount+0.01+1e-9 {
				want += lb.Cols[5].Floats[i] * disc
			}
		}
	}
	got := rel.Col(0).Floats[0]
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("Q6 revenue %f want %f", got, want)
	}
}

func TestQ13IncludesZeroCountCustomers(t *testing.T) {
	cat, d := loadTest(t, false)
	plan, err := buildQ13(cat)
	if err != nil {
		t.Fatal(err)
	}
	ec := &engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot()}
	rel, err := plan.Execute(ec)
	if err != nil {
		t.Fatal(err)
	}
	// Total customers across the distribution must equal the customer count.
	total := int64(0)
	cd := rel.ColByName("custdist")
	for i := 0; i < rel.NumRows(); i++ {
		total += cd.Ints[i]
	}
	if total != int64(d.Rows("customer")) {
		t.Fatalf("distribution covers %d customers, want %d", total, d.Rows("customer"))
	}
	// Reference: count customers with zero orders.
	withOrders := map[int64]bool{}
	ob := d.Batches["orders"]
	for i := 0; i < ob.N; i++ {
		withOrders[ob.Cols[1].Ints[i]] = true
	}
	zeros := int64(d.Rows("customer") - len(withOrders))
	cc := rel.ColByName("c_count")
	var gotZeros int64
	for i := 0; i < rel.NumRows(); i++ {
		if cc.Ints[i] == 0 {
			gotZeros = cd.Ints[i]
		}
	}
	if zeros > 0 && gotZeros != zeros {
		t.Fatalf("zero-order customers %d want %d", gotZeros, zeros)
	}
}

func TestParamRandomization(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var p1, p2 Params
	p1.Randomize(r)
	p2.Randomize(r)
	if p1 == p2 {
		t.Fatal("randomize produced identical params")
	}
	// Randomized queries must still plan and execute.
	cat, _ := loadTest(t, false)
	for _, q := range Queries(p1) {
		plan, err := q.Plan(cat)
		if err != nil {
			t.Fatalf("Q%d: %v", q.ID, err)
		}
		ec := &engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot()}
		if _, err := plan.Execute(ec); err != nil {
			t.Fatalf("Q%d: %v", q.ID, err)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
