package tpch

import (
	"fmt"
	"math/rand"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/sql"
	"github.com/predcache/predcache/internal/storage"
)

// Params are the substitution parameters of the 22 queries. DefaultParams
// returns the TPC-H validation values; Randomize draws a fresh instance the
// way the benchmark's qgen does, producing the "similar queries with
// different literals" pattern the workload experiments need.
type Params struct {
	Q1Delta     int    // days subtracted from 1998-12-01
	Q2Size      int    // p_size
	Q2Type      string // p_type suffix
	Q2Region    string
	Q3Segment   string
	Q3Date      string
	Q4Date      string // quarter start
	Q5Region    string
	Q5Date      string // year start
	Q6Date      string
	Q6Discount  float64
	Q6Quantity  int
	Q7Nation1   string
	Q7Nation2   string
	Q8Nation    string
	Q8Region    string
	Q8Type      string
	Q9Color     string
	Q10Date     string // quarter start
	Q11Nation   string
	Q11Thresh   float64
	Q12Mode1    string
	Q12Mode2    string
	Q12Date     string
	Q14Date     string
	Q15Date     string
	Q16Brand    string
	Q16Type     string
	Q16Sizes    [8]int
	Q17Brand    string
	Q17Cont     string
	Q17Quantity int
	Q18Quantity int
	Q19Brand1   string
	Q19Brand2   string
	Q19Brand3   string
	Q19Qty1     int
	Q19Qty2     int
	Q19Qty3     int
	Q20Color    string
	Q20Nation   string
	Q20Avail    int
	Q21Nation   string
	Q22Balance  float64
}

// DefaultParams returns the validation parameter set.
func DefaultParams() Params {
	return Params{
		Q1Delta: 90,
		Q2Size:  15, Q2Type: "BRASS", Q2Region: "EUROPE",
		Q3Segment: "BUILDING", Q3Date: "1995-03-15",
		Q4Date:   "1996-07-01",
		Q5Region: "ASIA", Q5Date: "1996-01-01",
		Q6Date: "1996-01-01", Q6Discount: 0.06, Q6Quantity: 24,
		Q7Nation1: "FRANCE", Q7Nation2: "GERMANY",
		Q8Nation: "BRAZIL", Q8Region: "AMERICA", Q8Type: "ECONOMY ANODIZED STEEL",
		Q9Color:   "green",
		Q10Date:   "1996-10-01",
		Q11Nation: "GERMANY", Q11Thresh: 0,
		Q12Mode1: "MAIL", Q12Mode2: "SHIP", Q12Date: "1996-01-01",
		Q14Date:  "1997-09-01",
		Q15Date:  "1997-01-01",
		Q16Brand: "Brand#45", Q16Type: "MEDIUM POLISHED", Q16Sizes: [8]int{49, 14, 23, 45, 19, 3, 36, 9},
		Q17Brand: "Brand#23", Q17Cont: "MED BOX", Q17Quantity: 5,
		Q18Quantity: 150,
		Q19Brand1:   "Brand#12", Q19Brand2: "Brand#23", Q19Brand3: "Brand#34",
		Q19Qty1: 1, Q19Qty2: 10, Q19Qty3: 20,
		Q20Color: "forest", Q20Nation: "CANADA", Q20Avail: 5000,
		Q21Nation:  "SAUDI ARABIA",
		Q22Balance: 0,
	}
}

// Randomize draws a fresh parameter instance.
func (p *Params) Randomize(r *rand.Rand) {
	*p = DefaultParams()
	p.Q1Delta = 60 + r.Intn(60)
	p.Q2Size = r.Intn(50) + 1
	p.Q2Type = typeSyl3[r.Intn(len(typeSyl3))]
	p.Q2Region = regionNames[r.Intn(len(regionNames))]
	p.Q3Segment = segments[r.Intn(len(segments))]
	p.Q3Date = fmt.Sprintf("1995-03-%02d", r.Intn(28)+1)
	p.Q4Date = fmt.Sprintf("%d-%02d-01", 1995+r.Intn(3), []int{1, 4, 7, 10}[r.Intn(4)])
	p.Q5Region = regionNames[r.Intn(len(regionNames))]
	p.Q5Date = fmt.Sprintf("%d-01-01", 1995+r.Intn(3))
	p.Q6Date = fmt.Sprintf("%d-01-01", 1995+r.Intn(3))
	p.Q6Discount = float64(2+r.Intn(8)) / 100
	p.Q6Quantity = 24 + r.Intn(2)
	n1, n2 := r.Intn(len(nations)), r.Intn(len(nations))
	if n1 == n2 {
		n2 = (n2 + 1) % len(nations)
	}
	p.Q7Nation1, p.Q7Nation2 = nations[n1].name, nations[n2].name
	p.Q8Nation = nations[r.Intn(len(nations))].name
	p.Q8Region = regionNames[nations[indexOfNation(p.Q8Nation)].region]
	p.Q8Type = typeSyl1[r.Intn(len(typeSyl1))] + " " + typeSyl2[r.Intn(len(typeSyl2))] + " " + typeSyl3[r.Intn(len(typeSyl3))]
	p.Q9Color = colors[r.Intn(len(colors))]
	p.Q10Date = fmt.Sprintf("%d-%02d-01", 1995+r.Intn(3), []int{1, 4, 7, 10}[r.Intn(4)])
	p.Q11Nation = nations[r.Intn(len(nations))].name
	p.Q12Mode1 = shipModes[r.Intn(len(shipModes))]
	p.Q12Mode2 = shipModes[r.Intn(len(shipModes))]
	p.Q12Date = fmt.Sprintf("%d-01-01", 1995+r.Intn(3))
	p.Q14Date = fmt.Sprintf("%d-%02d-01", 1995+r.Intn(3), r.Intn(12)+1)
	p.Q15Date = fmt.Sprintf("%d-%02d-01", 1995+r.Intn(3), []int{1, 4, 7, 10}[r.Intn(4)])
	p.Q16Brand = fmt.Sprintf("Brand#%d%d", r.Intn(5)+1, r.Intn(5)+1)
	p.Q16Type = typeSyl1[r.Intn(len(typeSyl1))] + " " + typeSyl2[r.Intn(len(typeSyl2))]
	for i := range p.Q16Sizes {
		p.Q16Sizes[i] = r.Intn(50) + 1
	}
	p.Q17Brand = fmt.Sprintf("Brand#%d%d", r.Intn(5)+1, r.Intn(5)+1)
	p.Q17Cont = containers[r.Intn(len(containers))] + " " + containerT[r.Intn(len(containerT))]
	p.Q17Quantity = 2 + r.Intn(9)
	p.Q18Quantity = 120 + r.Intn(120)
	p.Q19Brand1 = fmt.Sprintf("Brand#%d%d", r.Intn(5)+1, r.Intn(5)+1)
	p.Q19Brand2 = fmt.Sprintf("Brand#%d%d", r.Intn(5)+1, r.Intn(5)+1)
	p.Q19Brand3 = fmt.Sprintf("Brand#%d%d", r.Intn(5)+1, r.Intn(5)+1)
	p.Q19Qty1 = 1 + r.Intn(10)
	p.Q19Qty2 = 10 + r.Intn(10)
	p.Q19Qty3 = 20 + r.Intn(10)
	p.Q20Color = colors[r.Intn(len(colors))]
	p.Q20Nation = nations[r.Intn(len(nations))].name
	p.Q21Nation = nations[r.Intn(len(nations))].name
}

func indexOfNation(name string) int {
	for i, n := range nations {
		if n.name == name {
			return i
		}
	}
	return 0
}

// Query is one benchmark query: either SQL text or, for the two queries
// needing join types outside the SQL subset (13, 22), a plan builder.
type Query struct {
	ID   int
	Name string
	SQL  string
	// Build constructs the plan directly (nil when SQL is used).
	Build func(cat *storage.Catalog) (engine.Node, error)
	// Note documents the simplification relative to the official query.
	Note string
}

// Plan returns the executable plan for the query.
func (q Query) Plan(cat *storage.Catalog) (engine.Node, error) {
	if q.Build != nil {
		return q.Build(cat)
	}
	return sql.PlanSQL(q.SQL, cat)
}

// Text returns a stable textual form of the query (the result-cache key).
func (q Query) Text() string {
	if q.SQL != "" {
		return q.SQL
	}
	return fmt.Sprintf("builder:q%d:%s", q.ID, q.Name)
}

// Queries returns all 22 TPC-H queries instantiated with params.
func Queries(p Params) []Query {
	qs := []Query{
		{ID: 1, Name: "pricing-summary", SQL: fmt.Sprintf(`
select l_returnflag, l_linestatus,
       sum(l_quantity) as sum_qty,
       sum(l_extendedprice) as sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
       avg(l_quantity) as avg_qty,
       avg(l_extendedprice) as avg_price,
       avg(l_discount) as avg_disc,
       count(*) as count_order
from lineitem
where l_shipdate <= date '1998-12-01' - interval '%d' day
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus`, p.Q1Delta)},

		{ID: 2, Name: "minimum-cost-supplier", Note: "correlated min(ps_supplycost) subquery dropped; returns all matching suppliers ordered by balance", SQL: fmt.Sprintf(`
select s_acctbal, s_name, n_name, p_partkey, p_mfgr
from part, supplier, partsupp, nation, region
where p_partkey = ps_partkey
  and s_suppkey = ps_suppkey
  and p_size = %d
  and p_type like '%%%s'
  and s_nationkey = n_nationkey
  and n_regionkey = r_regionkey
  and r_name = '%s'
order by s_acctbal desc, n_name, s_name, p_partkey
limit 100`, p.Q2Size, p.Q2Type, p.Q2Region)},

		{ID: 3, Name: "shipping-priority", SQL: fmt.Sprintf(`
select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue,
       o_orderdate, o_shippriority
from customer, orders, lineitem
where c_mktsegment = '%s'
  and c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and o_orderdate < date '%s'
  and l_shipdate > date '%s'
group by l_orderkey, o_orderdate, o_shippriority
order by revenue desc, o_orderdate
limit 10`, p.Q3Segment, p.Q3Date, p.Q3Date)},

		{ID: 4, Name: "order-priority", Note: "exists subquery rewritten as join + count(distinct o_orderkey)", SQL: fmt.Sprintf(`
select o_orderpriority, count(distinct o_orderkey) as order_count
from orders, lineitem
where o_orderkey = l_orderkey
  and o_orderdate >= date '%s'
  and o_orderdate < date '%s' + interval '3' month
  and l_commitdate < l_receiptdate
group by o_orderpriority
order by o_orderpriority`, p.Q4Date, p.Q4Date)},

		{ID: 5, Name: "local-supplier-volume", SQL: fmt.Sprintf(`
select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
from customer, orders, lineitem, supplier, nation, region
where c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and l_suppkey = s_suppkey
  and c_nationkey = s_nationkey
  and s_nationkey = n_nationkey
  and n_regionkey = r_regionkey
  and r_name = '%s'
  and o_orderdate >= date '%s'
  and o_orderdate < date '%s' + interval '1' year
group by n_name
order by revenue desc`, p.Q5Region, p.Q5Date, p.Q5Date)},

		{ID: 6, Name: "forecast-revenue-change", SQL: fmt.Sprintf(`
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '%s'
  and l_shipdate < date '%s' + interval '1' year
  and l_discount between %.2f and %.2f
  and l_quantity < %d`, p.Q6Date, p.Q6Date, p.Q6Discount-0.01, p.Q6Discount+0.01, p.Q6Quantity)},

		{ID: 7, Name: "volume-shipping", SQL: fmt.Sprintf(`
select n1.n_name as supp_nation, n2.n_name as cust_nation,
       extract(year from l_shipdate) as l_year,
       sum(l_extendedprice * (1 - l_discount)) as revenue
from supplier, lineitem, orders, customer, nation n1, nation n2
where s_suppkey = l_suppkey
  and o_orderkey = l_orderkey
  and c_custkey = o_custkey
  and s_nationkey = n1.n_nationkey
  and c_nationkey = n2.n_nationkey
  and ((n1.n_name = '%s' and n2.n_name = '%s') or (n1.n_name = '%s' and n2.n_name = '%s'))
  and l_shipdate between date '1995-01-01' and date '1996-12-31'
group by n1.n_name, n2.n_name, extract(year from l_shipdate)
order by supp_nation, cust_nation, l_year`, p.Q7Nation1, p.Q7Nation2, p.Q7Nation2, p.Q7Nation1)},

		{ID: 8, Name: "market-share", SQL: fmt.Sprintf(`
select extract(year from o_orderdate) as o_year,
       sum(case when n2.n_name = '%s' then l_extendedprice * (1 - l_discount) else 0 end) / sum(l_extendedprice * (1 - l_discount)) as mkt_share
from part, supplier, lineitem, orders, customer, nation n1, nation n2, region
where p_partkey = l_partkey
  and s_suppkey = l_suppkey
  and l_orderkey = o_orderkey
  and o_custkey = c_custkey
  and c_nationkey = n1.n_nationkey
  and n1.n_regionkey = r_regionkey
  and r_name = '%s'
  and s_nationkey = n2.n_nationkey
  and o_orderdate between date '1995-01-01' and date '1996-12-31'
  and p_type = '%s'
group by extract(year from o_orderdate)
order by o_year`, p.Q8Nation, p.Q8Region, p.Q8Type)},

		{ID: 9, Name: "product-type-profit", SQL: fmt.Sprintf(`
select n_name as nation, extract(year from o_orderdate) as o_year,
       sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) as sum_profit
from part, supplier, lineitem, partsupp, orders, nation
where s_suppkey = l_suppkey
  and ps_suppkey = l_suppkey
  and ps_partkey = l_partkey
  and p_partkey = l_partkey
  and o_orderkey = l_orderkey
  and s_nationkey = n_nationkey
  and p_name like '%%%s%%'
group by n_name, extract(year from o_orderdate)
order by nation, o_year desc`, p.Q9Color)},

		{ID: 10, Name: "returned-items", SQL: fmt.Sprintf(`
select c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) as revenue,
       c_acctbal, n_name
from customer, orders, lineitem, nation
where c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and o_orderdate >= date '%s'
  and o_orderdate < date '%s' + interval '3' month
  and l_returnflag = 'R'
  and c_nationkey = n_nationkey
group by c_custkey, c_name, c_acctbal, n_name
order by revenue desc
limit 20`, p.Q10Date, p.Q10Date)},

		{ID: 11, Name: "important-stock", Note: "global-sum fraction subquery replaced by a constant HAVING threshold", SQL: fmt.Sprintf(`
select ps_partkey, sum(ps_supplycost * ps_availqty) as value
from partsupp, supplier, nation
where ps_suppkey = s_suppkey
  and s_nationkey = n_nationkey
  and n_name = '%s'
group by ps_partkey
having sum(ps_supplycost * ps_availqty) > %.2f
order by value desc
limit 100`, p.Q11Nation, p.Q11Thresh)},

		{ID: 12, Name: "shipping-modes", SQL: fmt.Sprintf(`
select l_shipmode,
       sum(case when o_orderpriority = '1-URGENT' or o_orderpriority = '2-HIGH' then 1 else 0 end) as high_line_count,
       sum(case when o_orderpriority <> '1-URGENT' and o_orderpriority <> '2-HIGH' then 1 else 0 end) as low_line_count
from orders, lineitem
where o_orderkey = l_orderkey
  and l_shipmode in ('%s', '%s')
  and l_commitdate < l_receiptdate
  and l_shipdate < l_commitdate
  and l_receiptdate >= date '%s'
  and l_receiptdate < date '%s' + interval '1' year
group by l_shipmode
order by l_shipmode`, p.Q12Mode1, p.Q12Mode2, p.Q12Date, p.Q12Date)},

		{ID: 13, Name: "customer-distribution", Note: "left outer join built directly (SQL subset has inner joins only); o_comment filter dropped (no comment columns generated)",
			Build: buildQ13},

		{ID: 14, Name: "promotion-effect", SQL: fmt.Sprintf(`
select 100.00 * sum(case when p_type like 'PROMO%%' then l_extendedprice * (1 - l_discount) else 0 end) / sum(l_extendedprice * (1 - l_discount)) as promo_revenue
from lineitem, part
where l_partkey = p_partkey
  and l_shipdate >= date '%s'
  and l_shipdate < date '%s' + interval '1' month`, p.Q14Date, p.Q14Date)},

		{ID: 15, Name: "top-supplier", Note: "max-revenue view replaced by order by revenue desc limit 1", SQL: fmt.Sprintf(`
select l_suppkey, sum(l_extendedprice * (1 - l_discount)) as total_revenue
from lineitem
where l_shipdate >= date '%s'
  and l_shipdate < date '%s' + interval '3' month
group by l_suppkey
order by total_revenue desc
limit 1`, p.Q15Date, p.Q15Date)},

		{ID: 16, Name: "parts-supplier-relationship", Note: "not-in-complaints-supplier subquery dropped", SQL: fmt.Sprintf(`
select p_brand, p_type, p_size, count(distinct ps_suppkey) as supplier_cnt
from partsupp, part
where p_partkey = ps_partkey
  and p_brand <> '%s'
  and p_type not like '%s%%'
  and p_size in (%d, %d, %d, %d, %d, %d, %d, %d)
group by p_brand, p_type, p_size
order by supplier_cnt desc, p_brand, p_type, p_size
limit 100`, p.Q16Brand, p.Q16Type,
			p.Q16Sizes[0], p.Q16Sizes[1], p.Q16Sizes[2], p.Q16Sizes[3],
			p.Q16Sizes[4], p.Q16Sizes[5], p.Q16Sizes[6], p.Q16Sizes[7])},

		{ID: 17, Name: "small-quantity-order", Note: "per-part 0.2*avg(l_quantity) subquery replaced by a constant quantity threshold", SQL: fmt.Sprintf(`
select sum(l_extendedprice) / 7.0 as avg_yearly
from lineitem, part
where p_partkey = l_partkey
  and p_brand = '%s'
  and p_container = '%s'
  and l_quantity < %d`, p.Q17Brand, p.Q17Cont, p.Q17Quantity)},

		{ID: 18, Name: "large-volume-customer", Note: "in-subquery folded into HAVING over the join", SQL: fmt.Sprintf(`
select c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(l_quantity) as total_qty
from customer, orders, lineitem
where c_custkey = o_custkey
  and o_orderkey = l_orderkey
group by c_custkey, o_orderkey, o_orderdate, o_totalprice
having sum(l_quantity) > %d
order by o_totalprice desc, o_orderdate
limit 100`, p.Q18Quantity)},

		{ID: 19, Name: "discounted-revenue", SQL: fmt.Sprintf(`
select sum(l_extendedprice * (1 - l_discount)) as revenue
from lineitem, part
where p_partkey = l_partkey
  and ((p_brand = '%s' and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') and l_quantity between %d and %d and p_size between 1 and 5 and l_shipmode in ('AIR', 'REG AIR') and l_shipinstruct = 'DELIVER IN PERSON')
    or (p_brand = '%s' and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') and l_quantity between %d and %d and p_size between 1 and 10 and l_shipmode in ('AIR', 'REG AIR') and l_shipinstruct = 'DELIVER IN PERSON')
    or (p_brand = '%s' and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') and l_quantity between %d and %d and p_size between 1 and 15 and l_shipmode in ('AIR', 'REG AIR') and l_shipinstruct = 'DELIVER IN PERSON'))`,
			p.Q19Brand1, p.Q19Qty1, p.Q19Qty1+10,
			p.Q19Brand2, p.Q19Qty2, p.Q19Qty2+10,
			p.Q19Brand3, p.Q19Qty3, p.Q19Qty3+10)},

		{ID: 20, Name: "potential-promotion", Note: "nested excess-stock subqueries replaced by an availqty threshold", SQL: fmt.Sprintf(`
select s_name, count(*) as part_count
from supplier, nation, partsupp, part
where s_suppkey = ps_suppkey
  and p_partkey = ps_partkey
  and p_name like '%s%%'
  and ps_availqty > %d
  and s_nationkey = n_nationkey
  and n_name = '%s'
group by s_name
order by s_name
limit 100`, p.Q20Color, p.Q20Avail, p.Q20Nation)},

		{ID: 21, Name: "suppliers-kept-waiting", Note: "exists/not-exists other-supplier conditions dropped", SQL: fmt.Sprintf(`
select s_name, count(*) as numwait
from supplier, lineitem, orders, nation
where s_suppkey = l_suppkey
  and o_orderkey = l_orderkey
  and o_orderstatus = 'F'
  and l_receiptdate > l_commitdate
  and s_nationkey = n_nationkey
  and n_name = '%s'
group by s_name
order by numwait desc, s_name
limit 100`, p.Q21Nation)},

		{ID: 22, Name: "global-sales-opportunity", Note: "phone-prefix test replaced by nation keys; not-exists(orders) built as an anti join",
			Build: func(cat *storage.Catalog) (engine.Node, error) { return buildQ22(cat, p.Q22Balance) }},
	}
	return qs
}

// buildQ13 counts customers by their number of orders, including customers
// with none: inner-join counts unioned with anti-join zeros.
func buildQ13(cat *storage.Catalog) (engine.Node, error) {
	// Per-customer order counts (customers with >= 1 order).
	perCust := &engine.Agg{
		Input:   &engine.Scan{Table: "orders", Project: []string{"o_custkey"}},
		GroupBy: []string{"o_custkey"},
		Aggs:    []engine.AggSpec{{Func: engine.AggCount, Name: "c_count"}},
	}
	// Customers with no orders get count 0 via an anti join.
	zeros := &engine.Project{
		Input: &engine.Join{
			Left:      &engine.Scan{Table: "customer", Project: []string{"c_custkey"}},
			Right:     &engine.Scan{Table: "orders", Project: []string{"o_custkey"}},
			LeftKeys:  []string{"c_custkey"},
			RightKeys: []string{"o_custkey"},
			Type:      engine.AntiJoin,
		},
		Exprs: []engine.NamedScalar{
			{Expr: expr.Col("c_custkey"), Name: "o_custkey"},
			{Expr: expr.Const(expr.Int(0)), Name: "c_count"},
		},
	}
	// Distribution: how many customers share each order count.
	dist := &engine.Agg{
		Input:   &engine.Union{Inputs: []engine.Node{perCust, zeros}},
		GroupBy: []string{"c_count"},
		Aggs:    []engine.AggSpec{{Func: engine.AggCount, Name: "custdist"}},
	}
	return &engine.Sort{
		Input: dist,
		Keys:  []engine.SortKey{{Col: "custdist", Desc: true}, {Col: "c_count", Desc: true}},
	}, nil
}

// buildQ22 aggregates account balances of customers with positive balance
// and no orders (anti join), grouped by nation key (standing in for the
// phone country code).
func buildQ22(cat *storage.Catalog, minBal float64) (engine.Node, error) {
	noOrders := &engine.Join{
		Left: &engine.Scan{
			Table:   "customer",
			Filter:  expr.Cmp("c_acctbal", expr.Gt, expr.Float(minBal)),
			Project: []string{"c_custkey", "c_nationkey", "c_acctbal"},
		},
		Right:     &engine.Scan{Table: "orders", Project: []string{"o_custkey"}},
		LeftKeys:  []string{"c_custkey"},
		RightKeys: []string{"o_custkey"},
		Type:      engine.AntiJoin,
	}
	agg := &engine.Agg{
		Input:   noOrders,
		GroupBy: []string{"c_nationkey"},
		Aggs: []engine.AggSpec{
			{Func: engine.AggCount, Name: "numcust"},
			{Func: engine.AggSum, Arg: expr.Col("c_acctbal"), Name: "totacctbal"},
		},
	}
	return &engine.Sort{Input: agg, Keys: []engine.SortKey{{Col: "c_nationkey"}}}, nil
}
