// Package tpch implements a from-scratch TPC-H data generator — uniform, as
// the standard dbgen produces, and a skewed variant standing in for the
// paper's skewed TPC-H generator [3] — plus all 22 benchmark queries
// expressed in this repository's SQL subset (documented per-query
// simplifications in queries.go).
//
// The skewed variant differs from uniform in two ways that matter to the
// predicate cache: foreign keys, quantities and discounts follow Zipf
// distributions (hot values dominate), and orders are emitted in order-date
// order, modelling a warehouse ingesting data over time. The combination
// concentrates the rows qualifying for selective predicates into few blocks,
// which is the property Table 4 of the paper depends on ("predicate caching
// performs better on data sets with a more uneven distribution").
package tpch

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/predcache/predcache/internal/storage"
)

// Config controls generation.
type Config struct {
	// SF is the scale factor: lineitem has roughly SF * 6M rows.
	SF float64
	// Skewed selects the skewed generator variant.
	Skewed bool
	// Seed makes generation deterministic.
	Seed int64
}

// Data is a generated database.
type Data struct {
	Cfg     Config
	Batches map[string]*storage.Batch
}

// Regions and nations follow the TPC-H specification.
var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nations = []struct {
	name   string
	region int64
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1}, {"EGYPT", 4},
	{"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3}, {"INDIA", 2}, {"INDONESIA", 2},
	{"IRAN", 4}, {"IRAQ", 4}, {"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0},
	{"MOROCCO", 0}, {"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var colors = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched",
	"blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate",
	"coral", "cornflower", "cream", "cyan", "dark", "deep", "dim", "dodger",
	"drab", "firebrick", "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
	"green", "grey", "honeydew", "hot", "indian", "ivory", "khaki", "lace",
}

var (
	typeSyl1   = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2   = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3   = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	containers = []string{"SM", "MED", "LG", "JUMBO", "WRAP"}
	containerT = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
)

// Table row counts at scale factor 1 (lineitem is derived from orders).
func counts(sf float64) map[string]int {
	scale := func(base int, min int) int {
		n := int(float64(base) * sf)
		if n < min {
			n = min
		}
		return n
	}
	return map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": scale(10000, 20),
		"part":     scale(200000, 200),
		"customer": scale(150000, 100),
		"orders":   scale(1500000, 1000),
	}
}

// Schemas returns the TPC-H table schemas (decimal columns as float64,
// dates as day numbers).
func Schemas() map[string]storage.Schema {
	return map[string]storage.Schema{
		"region": {
			{Name: "r_regionkey", Type: storage.Int64},
			{Name: "r_name", Type: storage.String},
		},
		"nation": {
			{Name: "n_nationkey", Type: storage.Int64},
			{Name: "n_name", Type: storage.String},
			{Name: "n_regionkey", Type: storage.Int64},
		},
		"supplier": {
			{Name: "s_suppkey", Type: storage.Int64},
			{Name: "s_name", Type: storage.String},
			{Name: "s_nationkey", Type: storage.Int64},
			{Name: "s_acctbal", Type: storage.Float64},
		},
		"part": {
			{Name: "p_partkey", Type: storage.Int64},
			{Name: "p_name", Type: storage.String},
			{Name: "p_mfgr", Type: storage.String},
			{Name: "p_brand", Type: storage.String},
			{Name: "p_type", Type: storage.String},
			{Name: "p_size", Type: storage.Int64},
			{Name: "p_container", Type: storage.String},
			{Name: "p_retailprice", Type: storage.Float64},
		},
		"partsupp": {
			{Name: "ps_partkey", Type: storage.Int64},
			{Name: "ps_suppkey", Type: storage.Int64},
			{Name: "ps_availqty", Type: storage.Int64},
			{Name: "ps_supplycost", Type: storage.Float64},
		},
		"customer": {
			{Name: "c_custkey", Type: storage.Int64},
			{Name: "c_name", Type: storage.String},
			{Name: "c_nationkey", Type: storage.Int64},
			{Name: "c_acctbal", Type: storage.Float64},
			{Name: "c_mktsegment", Type: storage.String},
		},
		"orders": {
			{Name: "o_orderkey", Type: storage.Int64},
			{Name: "o_custkey", Type: storage.Int64},
			{Name: "o_orderstatus", Type: storage.String},
			{Name: "o_totalprice", Type: storage.Float64},
			{Name: "o_orderdate", Type: storage.Date},
			{Name: "o_orderpriority", Type: storage.String},
			{Name: "o_shippriority", Type: storage.Int64},
		},
		"lineitem": {
			{Name: "l_orderkey", Type: storage.Int64},
			{Name: "l_partkey", Type: storage.Int64},
			{Name: "l_suppkey", Type: storage.Int64},
			{Name: "l_linenumber", Type: storage.Int64},
			{Name: "l_quantity", Type: storage.Int64},
			{Name: "l_extendedprice", Type: storage.Float64},
			{Name: "l_discount", Type: storage.Float64},
			{Name: "l_tax", Type: storage.Float64},
			{Name: "l_returnflag", Type: storage.String},
			{Name: "l_linestatus", Type: storage.String},
			{Name: "l_shipdate", Type: storage.Date},
			{Name: "l_commitdate", Type: storage.Date},
			{Name: "l_receiptdate", Type: storage.Date},
			{Name: "l_shipinstruct", Type: storage.String},
			{Name: "l_shipmode", Type: storage.String},
		},
	}
}

// pick draws either uniformly or Zipf-skewed over [0, n).
type picker struct {
	r      *rand.Rand
	skewed bool
	zipfs  map[int]*rand.Zipf
}

func newPicker(r *rand.Rand, skewed bool) *picker {
	return &picker{r: r, skewed: skewed, zipfs: make(map[int]*rand.Zipf)}
}

func (p *picker) pick(n int) int64 {
	if !p.skewed || n < 2 {
		return int64(p.r.Intn(n))
	}
	z, ok := p.zipfs[n]
	if !ok {
		z = rand.NewZipf(p.r, 1.3, 1, uint64(n-1))
		p.zipfs[n] = z
	}
	return int64(z.Uint64())
}

// Generate builds all eight tables deterministically.
func Generate(cfg Config) *Data {
	r := rand.New(rand.NewSource(cfg.Seed))
	pk := newPicker(r, cfg.Skewed)
	cnt := counts(cfg.SF)
	schemas := Schemas()
	d := &Data{Cfg: cfg, Batches: make(map[string]*storage.Batch)}

	// region
	rb := storage.NewBatch(schemas["region"])
	for i, name := range regionNames {
		rb.Cols[0].Ints = append(rb.Cols[0].Ints, int64(i))
		rb.Cols[1].Strings = append(rb.Cols[1].Strings, name)
	}
	rb.N = len(regionNames)
	d.Batches["region"] = rb

	// nation
	nb := storage.NewBatch(schemas["nation"])
	for i, n := range nations {
		nb.Cols[0].Ints = append(nb.Cols[0].Ints, int64(i))
		nb.Cols[1].Strings = append(nb.Cols[1].Strings, n.name)
		nb.Cols[2].Ints = append(nb.Cols[2].Ints, n.region)
	}
	nb.N = len(nations)
	d.Batches["nation"] = nb

	// supplier
	nSupp := cnt["supplier"]
	sb := storage.NewBatch(schemas["supplier"])
	for i := 0; i < nSupp; i++ {
		sb.Cols[0].Ints = append(sb.Cols[0].Ints, int64(i+1))
		sb.Cols[1].Strings = append(sb.Cols[1].Strings, fmt.Sprintf("Supplier#%09d", i+1))
		sb.Cols[2].Ints = append(sb.Cols[2].Ints, pk.pick(25))
		sb.Cols[3].Floats = append(sb.Cols[3].Floats, float64(r.Intn(1099999))/100-999.99)
	}
	sb.N = nSupp
	d.Batches["supplier"] = sb

	// part
	nPart := cnt["part"]
	pb := storage.NewBatch(schemas["part"])
	for i := 0; i < nPart; i++ {
		pb.Cols[0].Ints = append(pb.Cols[0].Ints, int64(i+1))
		c1 := colors[r.Intn(len(colors))]
		c2 := colors[r.Intn(len(colors))]
		pb.Cols[1].Strings = append(pb.Cols[1].Strings, c1+" "+c2)
		m := r.Intn(5) + 1
		pb.Cols[2].Strings = append(pb.Cols[2].Strings, fmt.Sprintf("Manufacturer#%d", m))
		pb.Cols[3].Strings = append(pb.Cols[3].Strings, fmt.Sprintf("Brand#%d%d", m, r.Intn(5)+1))
		pb.Cols[4].Strings = append(pb.Cols[4].Strings,
			typeSyl1[pk.pick(len(typeSyl1))]+" "+typeSyl2[r.Intn(len(typeSyl2))]+" "+typeSyl3[r.Intn(len(typeSyl3))])
		pb.Cols[5].Ints = append(pb.Cols[5].Ints, pk.pick(50)+1)
		pb.Cols[6].Strings = append(pb.Cols[6].Strings,
			containers[r.Intn(len(containers))]+" "+containerT[r.Intn(len(containerT))])
		pb.Cols[7].Floats = append(pb.Cols[7].Floats, 900+float64((i+1)%200)+float64(r.Intn(100))/100)
	}
	pb.N = nPart
	d.Batches["part"] = pb

	// partsupp: 4 suppliers per part.
	psb := storage.NewBatch(schemas["partsupp"])
	for i := 0; i < nPart; i++ {
		for j := 0; j < 4; j++ {
			psb.Cols[0].Ints = append(psb.Cols[0].Ints, int64(i+1))
			psb.Cols[1].Ints = append(psb.Cols[1].Ints, int64((i+j*(nSupp/4+1))%nSupp+1))
			psb.Cols[2].Ints = append(psb.Cols[2].Ints, int64(r.Intn(9999)+1))
			psb.Cols[3].Floats = append(psb.Cols[3].Floats, float64(r.Intn(100000))/100+1)
		}
	}
	psb.N = nPart * 4
	d.Batches["partsupp"] = psb

	// customer
	nCust := cnt["customer"]
	cb := storage.NewBatch(schemas["customer"])
	for i := 0; i < nCust; i++ {
		cb.Cols[0].Ints = append(cb.Cols[0].Ints, int64(i+1))
		cb.Cols[1].Strings = append(cb.Cols[1].Strings, fmt.Sprintf("Customer#%09d", i+1))
		cb.Cols[2].Ints = append(cb.Cols[2].Ints, pk.pick(25))
		cb.Cols[3].Floats = append(cb.Cols[3].Floats, float64(r.Intn(1099999))/100-999.99)
		cb.Cols[4].Strings = append(cb.Cols[4].Strings, segments[pk.pick(len(segments))])
	}
	cb.N = nCust
	d.Batches["customer"] = cb

	// orders + lineitem
	nOrd := cnt["orders"]
	startDate := storage.DateFromYMD(1992, 1, 1)
	endDate := storage.DateFromYMD(1998, 8, 2)
	dateSpan := int(endDate - startDate)
	cutoff := storage.DateFromYMD(1995, 6, 17)

	orderDates := make([]int64, nOrd)
	for i := range orderDates {
		if cfg.Skewed {
			// Recent dates dominate: quadratic pull toward the end of the
			// range.
			f := r.Float64()
			f = 1 - f*f
			orderDates[i] = startDate + int64(f*float64(dateSpan))
		} else {
			orderDates[i] = startDate + int64(r.Intn(dateSpan))
		}
	}
	if cfg.Skewed {
		// Warehouses ingest in arrival order: physical order follows time.
		sort.Slice(orderDates, func(a, b int) bool { return orderDates[a] < orderDates[b] })
	}

	ob := storage.NewBatch(schemas["orders"])
	lb := storage.NewBatch(schemas["lineitem"])
	lineCount := 0
	for i := 0; i < nOrd; i++ {
		okey := int64(i + 1)
		odate := orderDates[i]
		status := "O"
		if odate < cutoff-90 {
			status = "F"
		} else if odate < cutoff {
			status = "P"
		}
		ob.Cols[0].Ints = append(ob.Cols[0].Ints, okey)
		ob.Cols[1].Ints = append(ob.Cols[1].Ints, pk.pick(nCust)+1)
		ob.Cols[2].Strings = append(ob.Cols[2].Strings, status)
		ob.Cols[4].Ints = append(ob.Cols[4].Ints, odate)
		ob.Cols[5].Strings = append(ob.Cols[5].Strings, priorities[r.Intn(len(priorities))])
		ob.Cols[6].Ints = append(ob.Cols[6].Ints, 0)

		nLines := r.Intn(7) + 1
		total := 0.0
		for ln := 0; ln < nLines; ln++ {
			qty := pk.pick(50) + 1
			price := float64(qty) * (900 + float64(r.Intn(10000))/100)
			disc := float64(pk.pick(11)) / 100
			tax := float64(r.Intn(9)) / 100
			ship := odate + int64(r.Intn(121)+1)
			commit := odate + int64(r.Intn(61)+30)
			receipt := ship + int64(r.Intn(30)+1)
			flag := "N"
			if receipt <= cutoff {
				if r.Intn(2) == 0 {
					flag = "R"
				} else {
					flag = "A"
				}
			}
			lstatus := "O"
			if ship <= cutoff {
				lstatus = "F"
			}
			lb.Cols[0].Ints = append(lb.Cols[0].Ints, okey)
			lb.Cols[1].Ints = append(lb.Cols[1].Ints, pk.pick(nPart)+1)
			lb.Cols[2].Ints = append(lb.Cols[2].Ints, pk.pick(nSupp)+1)
			lb.Cols[3].Ints = append(lb.Cols[3].Ints, int64(ln+1))
			lb.Cols[4].Ints = append(lb.Cols[4].Ints, qty)
			lb.Cols[5].Floats = append(lb.Cols[5].Floats, price)
			lb.Cols[6].Floats = append(lb.Cols[6].Floats, disc)
			lb.Cols[7].Floats = append(lb.Cols[7].Floats, tax)
			lb.Cols[8].Strings = append(lb.Cols[8].Strings, flag)
			lb.Cols[9].Strings = append(lb.Cols[9].Strings, lstatus)
			lb.Cols[10].Ints = append(lb.Cols[10].Ints, ship)
			lb.Cols[11].Ints = append(lb.Cols[11].Ints, commit)
			lb.Cols[12].Ints = append(lb.Cols[12].Ints, receipt)
			lb.Cols[13].Strings = append(lb.Cols[13].Strings, instructs[r.Intn(len(instructs))])
			lb.Cols[14].Strings = append(lb.Cols[14].Strings, shipModes[pk.pick(len(shipModes))])
			total += price * (1 + tax) * (1 - disc)
			lineCount++
		}
		ob.Cols[3].Floats = append(ob.Cols[3].Floats, total)
	}
	ob.N = nOrd
	lb.N = lineCount
	d.Batches["orders"] = ob
	d.Batches["lineitem"] = lb
	return d
}

// TableNames returns the TPC-H tables in dependency order.
func TableNames() []string {
	return []string{"region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"}
}

// Load creates the tables in the catalog and appends the generated data.
func (d *Data) Load(cat *storage.Catalog, slices int) error {
	schemas := Schemas()
	for _, name := range TableNames() {
		tbl, err := cat.CreateTable(name, schemas[name], slices)
		if err != nil {
			return err
		}
		if err := tbl.Append(d.Batches[name], cat.NextXID()); err != nil {
			return err
		}
	}
	return nil
}

// Rows returns the generated row count of a table.
func (d *Data) Rows(table string) int { return d.Batches[table].N }
