// Package ssb implements the Star Schema Benchmark (O'Neil et al. [30]):
// the denormalized lineorder fact table with date, customer, supplier, and
// part dimensions, and all 13 queries (flights 1-4). SSB queries are pure
// star joins with dimension filters — exactly the shape semi-join-filter
// caching (§4.4) targets.
package ssb

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/sql"
	"github.com/predcache/predcache/internal/storage"
)

// Config controls generation.
type Config struct {
	SF     float64
	Skewed bool
	Seed   int64
}

// Data holds the generated batches.
type Data struct {
	Cfg     Config
	Batches map[string]*storage.Batch
}

var (
	regions    = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationsPer = 5 // nations per region
	citiesPer  = 10
	months     = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
)

func nationName(region, i int) string { return fmt.Sprintf("%s-N%d", regions[region], i) }
func cityName(region, n, i int) string {
	return fmt.Sprintf("%s-N%d-C%d", regions[region], n, i)
}

// Schemas returns the SSB table schemas.
func Schemas() map[string]storage.Schema {
	return map[string]storage.Schema{
		"date": {
			{Name: "d_datekey", Type: storage.Int64}, // yyyymmdd
			{Name: "d_year", Type: storage.Int64},
			{Name: "d_yearmonthnum", Type: storage.Int64}, // yyyymm
			{Name: "d_yearmonth", Type: storage.String},   // e.g. Dec1997
			{Name: "d_weeknuminyear", Type: storage.Int64},
		},
		"customer": {
			{Name: "c_custkey", Type: storage.Int64},
			{Name: "c_city", Type: storage.String},
			{Name: "c_nation", Type: storage.String},
			{Name: "c_region", Type: storage.String},
		},
		"supplier": {
			{Name: "s_suppkey", Type: storage.Int64},
			{Name: "s_city", Type: storage.String},
			{Name: "s_nation", Type: storage.String},
			{Name: "s_region", Type: storage.String},
		},
		"part": {
			{Name: "p_partkey", Type: storage.Int64},
			{Name: "p_mfgr", Type: storage.String},
			{Name: "p_category", Type: storage.String},
			{Name: "p_brand1", Type: storage.String},
		},
		"lineorder": {
			{Name: "lo_orderkey", Type: storage.Int64},
			{Name: "lo_custkey", Type: storage.Int64},
			{Name: "lo_partkey", Type: storage.Int64},
			{Name: "lo_suppkey", Type: storage.Int64},
			{Name: "lo_orderdate", Type: storage.Int64}, // d_datekey
			{Name: "lo_quantity", Type: storage.Int64},
			{Name: "lo_extendedprice", Type: storage.Float64},
			{Name: "lo_discount", Type: storage.Int64}, // percent 0..10
			{Name: "lo_revenue", Type: storage.Float64},
			{Name: "lo_supplycost", Type: storage.Float64},
		},
	}
}

// Generate builds the five tables.
func Generate(cfg Config) *Data {
	r := rand.New(rand.NewSource(cfg.Seed))
	schemas := Schemas()
	d := &Data{Cfg: cfg, Batches: make(map[string]*storage.Batch)}
	scale := func(base, min int) int {
		n := int(float64(base) * cfg.SF)
		if n < min {
			n = min
		}
		return n
	}

	// date: 1992-01-01 .. 1998-12-31.
	db := storage.NewBatch(schemas["date"])
	start := storage.DateFromYMD(1992, 1, 1)
	end := storage.DateFromYMD(1998, 12, 31)
	var dateKeys []int64
	for day := start; day <= end; day++ {
		y, m, dd := storage.YMDFromDate(day)
		key := int64(y*10000 + m*100 + dd)
		dateKeys = append(dateKeys, key)
		db.Cols[0].Ints = append(db.Cols[0].Ints, key)
		db.Cols[1].Ints = append(db.Cols[1].Ints, int64(y))
		db.Cols[2].Ints = append(db.Cols[2].Ints, int64(y*100+m))
		db.Cols[3].Strings = append(db.Cols[3].Strings, fmt.Sprintf("%s%d", months[m-1], y))
		db.Cols[4].Ints = append(db.Cols[4].Ints, int64(day-start)%365/7+1)
	}
	db.N = len(dateKeys)
	d.Batches["date"] = db

	geoPick := func() (city, nation, region string) {
		reg := r.Intn(len(regions))
		nat := r.Intn(nationsPer)
		cit := r.Intn(citiesPer)
		return cityName(reg, nat, cit), nationName(reg, nat), regions[reg]
	}

	nCust := scale(30000, 100)
	cb := storage.NewBatch(schemas["customer"])
	for i := 0; i < nCust; i++ {
		city, nation, region := geoPick()
		cb.Cols[0].Ints = append(cb.Cols[0].Ints, int64(i+1))
		cb.Cols[1].Strings = append(cb.Cols[1].Strings, city)
		cb.Cols[2].Strings = append(cb.Cols[2].Strings, nation)
		cb.Cols[3].Strings = append(cb.Cols[3].Strings, region)
	}
	cb.N = nCust
	d.Batches["customer"] = cb

	nSupp := scale(2000, 40)
	sb := storage.NewBatch(schemas["supplier"])
	for i := 0; i < nSupp; i++ {
		city, nation, region := geoPick()
		sb.Cols[0].Ints = append(sb.Cols[0].Ints, int64(i+1))
		sb.Cols[1].Strings = append(sb.Cols[1].Strings, city)
		sb.Cols[2].Strings = append(sb.Cols[2].Strings, nation)
		sb.Cols[3].Strings = append(sb.Cols[3].Strings, region)
	}
	sb.N = nSupp
	d.Batches["supplier"] = sb

	nPart := scale(200000, 200)
	pb := storage.NewBatch(schemas["part"])
	for i := 0; i < nPart; i++ {
		m := r.Intn(5) + 1
		cat := r.Intn(5) + 1
		brand := r.Intn(40) + 1
		pb.Cols[0].Ints = append(pb.Cols[0].Ints, int64(i+1))
		pb.Cols[1].Strings = append(pb.Cols[1].Strings, fmt.Sprintf("MFGR#%d", m))
		pb.Cols[2].Strings = append(pb.Cols[2].Strings, fmt.Sprintf("MFGR#%d%d", m, cat))
		pb.Cols[3].Strings = append(pb.Cols[3].Strings, fmt.Sprintf("MFGR#%d%d%02d", m, cat, brand))
	}
	pb.N = nPart
	d.Batches["part"] = pb

	// lineorder.
	nLO := scale(6000000, 5000)
	lob := storage.NewBatch(schemas["lineorder"])
	var zipfCust, zipfPart, zipfSupp *rand.Zipf
	if cfg.Skewed {
		zipfCust = rand.NewZipf(r, 1.3, 1, uint64(nCust-1))
		zipfPart = rand.NewZipf(r, 1.3, 1, uint64(nPart-1))
		zipfSupp = rand.NewZipf(r, 1.3, 1, uint64(nSupp-1))
	}
	pick := func(z *rand.Zipf, n int) int64 {
		if z != nil {
			return int64(z.Uint64()) + 1
		}
		return int64(r.Intn(n)) + 1
	}
	for i := 0; i < nLO; i++ {
		var dk int64
		if cfg.Skewed {
			f := r.Float64()
			f = 1 - f*f
			idx := int(f * float64(len(dateKeys)-1))
			dk = dateKeys[idx]
		} else {
			dk = dateKeys[r.Intn(len(dateKeys))]
		}
		qty := int64(r.Intn(50) + 1)
		price := float64(r.Intn(100000))/100 + 1
		disc := int64(r.Intn(11))
		lob.Cols[0].Ints = append(lob.Cols[0].Ints, int64(i/4+1))
		lob.Cols[1].Ints = append(lob.Cols[1].Ints, pick(zipfCust, nCust))
		lob.Cols[2].Ints = append(lob.Cols[2].Ints, pick(zipfPart, nPart))
		lob.Cols[3].Ints = append(lob.Cols[3].Ints, pick(zipfSupp, nSupp))
		lob.Cols[4].Ints = append(lob.Cols[4].Ints, dk)
		lob.Cols[5].Ints = append(lob.Cols[5].Ints, qty)
		lob.Cols[6].Floats = append(lob.Cols[6].Floats, price)
		lob.Cols[7].Ints = append(lob.Cols[7].Ints, disc)
		lob.Cols[8].Floats = append(lob.Cols[8].Floats, price*float64(qty)*(100-float64(disc))/100)
		lob.Cols[9].Floats = append(lob.Cols[9].Floats, price*0.6)
		lob.N++
	}
	if cfg.Skewed {
		sortByCol(lob, 4)
	}
	d.Batches["lineorder"] = lob
	return d
}

// sortByCol stably sorts a batch by one int column (date-ordered ingest for
// the skewed variant).
func sortByCol(b *storage.Batch, col int) {
	perm := make([]int, b.N)
	for i := range perm {
		perm[i] = i
	}
	keys := b.Cols[col].Ints
	sort.SliceStable(perm, func(a, c int) bool { return keys[perm[a]] < keys[perm[c]] })
	for ci := range b.Cols {
		cv := &b.Cols[ci]
		switch {
		case cv.Ints != nil:
			out := make([]int64, b.N)
			for i, p := range perm {
				out[i] = cv.Ints[p]
			}
			cv.Ints = out
		case cv.Floats != nil:
			out := make([]float64, b.N)
			for i, p := range perm {
				out[i] = cv.Floats[p]
			}
			cv.Floats = out
		case cv.Strings != nil:
			out := make([]string, b.N)
			for i, p := range perm {
				out[i] = cv.Strings[p]
			}
			cv.Strings = out
		}
	}
}

// TableNames returns load order.
func TableNames() []string { return []string{"date", "customer", "supplier", "part", "lineorder"} }

// Load creates and fills the tables.
func (d *Data) Load(cat *storage.Catalog, slices int) error {
	schemas := Schemas()
	for _, name := range TableNames() {
		tbl, err := cat.CreateTable(name, schemas[name], slices)
		if err != nil {
			return err
		}
		if err := tbl.Append(d.Batches[name], cat.NextXID()); err != nil {
			return err
		}
	}
	return nil
}

// Query is one SSB query.
type Query struct {
	ID  string
	SQL string
}

// Plan compiles the query.
func (q Query) Plan(cat *storage.Catalog) (engine.Node, error) { return sql.PlanSQL(q.SQL, cat) }

// Queries returns the 13 SSB queries (validation parameters).
func Queries() []Query {
	return []Query{
		{ID: "1.1", SQL: `
select sum(lo_extendedprice * lo_discount) as revenue
from lineorder, date
where lo_orderdate = d_datekey and d_year = 1993
  and lo_discount between 1 and 3 and lo_quantity < 25`},
		{ID: "1.2", SQL: `
select sum(lo_extendedprice * lo_discount) as revenue
from lineorder, date
where lo_orderdate = d_datekey and d_yearmonthnum = 199401
  and lo_discount between 4 and 6 and lo_quantity between 26 and 35`},
		{ID: "1.3", SQL: `
select sum(lo_extendedprice * lo_discount) as revenue
from lineorder, date
where lo_orderdate = d_datekey and d_weeknuminyear = 6 and d_year = 1994
  and lo_discount between 5 and 7 and lo_quantity between 26 and 35`},
		{ID: "2.1", SQL: `
select sum(lo_revenue) as revenue, d_year, p_brand1
from lineorder, date, part, supplier
where lo_orderdate = d_datekey and lo_partkey = p_partkey and lo_suppkey = s_suppkey
  and p_category = 'MFGR#12' and s_region = 'AMERICA'
group by d_year, p_brand1 order by d_year, p_brand1`},
		{ID: "2.2", SQL: `
select sum(lo_revenue) as revenue, d_year, p_brand1
from lineorder, date, part, supplier
where lo_orderdate = d_datekey and lo_partkey = p_partkey and lo_suppkey = s_suppkey
  and p_brand1 between 'MFGR#2221' and 'MFGR#2228' and s_region = 'ASIA'
group by d_year, p_brand1 order by d_year, p_brand1`},
		{ID: "2.3", SQL: `
select sum(lo_revenue) as revenue, d_year, p_brand1
from lineorder, date, part, supplier
where lo_orderdate = d_datekey and lo_partkey = p_partkey and lo_suppkey = s_suppkey
  and p_brand1 = 'MFGR#2239' and s_region = 'EUROPE'
group by d_year, p_brand1 order by d_year, p_brand1`},
		{ID: "3.1", SQL: `
select c_nation, s_nation, d_year, sum(lo_revenue) as revenue
from customer, lineorder, supplier, date
where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_orderdate = d_datekey
  and c_region = 'ASIA' and s_region = 'ASIA' and d_year between 1992 and 1997
group by c_nation, s_nation, d_year order by d_year, revenue desc`},
		{ID: "3.2", SQL: `
select c_city, s_city, d_year, sum(lo_revenue) as revenue
from customer, lineorder, supplier, date
where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_orderdate = d_datekey
  and c_nation = 'AMERICA-N3' and s_nation = 'AMERICA-N3' and d_year between 1992 and 1997
group by c_city, s_city, d_year order by d_year, revenue desc`},
		{ID: "3.3", SQL: `
select c_city, s_city, d_year, sum(lo_revenue) as revenue
from customer, lineorder, supplier, date
where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_orderdate = d_datekey
  and c_city in ('ASIA-N1-C1', 'ASIA-N1-C5') and s_city in ('ASIA-N1-C1', 'ASIA-N1-C5')
  and d_year between 1992 and 1997
group by c_city, s_city, d_year order by d_year, revenue desc`},
		{ID: "3.4", SQL: `
select c_city, s_city, d_year, sum(lo_revenue) as revenue
from customer, lineorder, supplier, date
where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_orderdate = d_datekey
  and c_city in ('ASIA-N1-C1', 'ASIA-N1-C5') and s_city in ('ASIA-N1-C1', 'ASIA-N1-C5')
  and d_yearmonth = 'Dec1997'
group by c_city, s_city, d_year order by d_year, revenue desc`},
		{ID: "4.1", SQL: `
select d_year, c_nation, sum(lo_revenue - lo_supplycost) as profit
from date, customer, supplier, part, lineorder
where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_partkey = p_partkey
  and lo_orderdate = d_datekey
  and c_region = 'AMERICA' and s_region = 'AMERICA'
  and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2')
group by d_year, c_nation order by d_year, c_nation`},
		{ID: "4.2", SQL: `
select d_year, s_nation, p_category, sum(lo_revenue - lo_supplycost) as profit
from date, customer, supplier, part, lineorder
where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_partkey = p_partkey
  and lo_orderdate = d_datekey
  and c_region = 'AMERICA' and s_region = 'AMERICA'
  and d_year in (1997, 1998)
  and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2')
group by d_year, s_nation, p_category order by d_year, s_nation, p_category`},
		{ID: "4.3", SQL: `
select d_year, s_city, p_brand1, sum(lo_revenue - lo_supplycost) as profit
from date, customer, supplier, part, lineorder
where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_partkey = p_partkey
  and lo_orderdate = d_datekey
  and c_region = 'AMERICA' and s_nation = 'AMERICA-N1'
  and d_year in (1997, 1998) and p_category = 'MFGR#14'
group by d_year, s_city, p_brand1 order by d_year, s_city, p_brand1`},
	}
}
