package ssb

import (
	"testing"

	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/storage"
)

func loadSSB(t testing.TB, skewed bool) *storage.Catalog {
	t.Helper()
	d := Generate(Config{SF: 0.002, Skewed: skewed, Seed: 11})
	cat := storage.NewCatalog()
	if err := d.Load(cat, 2); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestGenerateShape(t *testing.T) {
	d := Generate(Config{SF: 0.002, Seed: 1})
	if d.Batches["date"].N != 2557 {
		t.Fatalf("date rows %d", d.Batches["date"].N)
	}
	if d.Batches["lineorder"].N < 5000 {
		t.Fatal("lineorder too small")
	}
	// Foreign keys in range.
	lo := d.Batches["lineorder"]
	nCust := int64(d.Batches["customer"].N)
	for _, k := range lo.Cols[1].Ints {
		if k < 1 || k > nCust {
			t.Fatalf("lo_custkey %d out of range", k)
		}
	}
	// Date keys reference real dates.
	dates := map[int64]bool{}
	for _, k := range d.Batches["date"].Cols[0].Ints {
		dates[k] = true
	}
	for _, k := range lo.Cols[4].Ints {
		if !dates[k] {
			t.Fatalf("lo_orderdate %d not in date dim", k)
		}
	}
}

func TestAll13QueriesExecute(t *testing.T) {
	cat := loadSSB(t, false)
	qs := Queries()
	if len(qs) != 13 {
		t.Fatalf("%d queries", len(qs))
	}
	for _, q := range qs {
		plan, err := q.Plan(cat)
		if err != nil {
			t.Fatalf("Q%s plan: %v", q.ID, err)
		}
		ec := &engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}}
		if _, err := plan.Execute(ec); err != nil {
			t.Fatalf("Q%s exec: %v", q.ID, err)
		}
	}
}

func TestSSBQueriesHitCache(t *testing.T) {
	cat := loadSSB(t, true)
	cache := core.NewCache(core.DefaultConfig())
	for _, q := range Queries() {
		plan, err := q.Plan(cat)
		if err != nil {
			t.Fatalf("Q%s: %v", q.ID, err)
		}
		for run := 0; run < 2; run++ {
			ec := &engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}, Cache: cache}
			if _, err := plan.Execute(ec); err != nil {
				t.Fatalf("Q%s run %d: %v", q.ID, run, err)
			}
		}
	}
	if cache.Stats().Hits == 0 {
		t.Fatal("no cache hits across SSB suite")
	}
}

func TestSkewedVariantOrdered(t *testing.T) {
	d := Generate(Config{SF: 0.002, Skewed: true, Seed: 2})
	dates := d.Batches["lineorder"].Cols[4].Ints
	for i := 1; i < len(dates); i++ {
		if dates[i] < dates[i-1] {
			t.Fatal("skewed lineorder not date-ordered")
		}
	}
}
