#!/usr/bin/env bash
# bench_compare.sh — record and compare scan-benchmark baselines.
#
# Usage:
#   scripts/bench_compare.sh                  record BENCH_<n>.json (next free n)
#   scripts/bench_compare.sh <label>          record BENCH_<label>.json
#   scripts/bench_compare.sh <old> <new>      compare two recordings (.json files)
#
# A recording holds per-benchmark ns/op, allocs/op, bytes/op, rows-scanned and
# attributed cpu_us/allocs_per_query for the scan micro-benchmarks (see
# internal/bench/micro.go). Run it once before a performance change and once
# after, then compare:
#
#   scripts/bench_compare.sh BENCH_0.json BENCH_1.json
#
# Compare mode exits non-zero when any benchmark's allocation count regresses
# beyond slack (new > old*1.10 + 16), so CI can gate on it directly.
#
# Recordings are plain JSON; keep them committed so future PRs inherit a
# baseline (EXPERIMENTS.md documents how to read them).
#
# Before recording, the script runs the Table4TPCHSkewed benchmark at
# -cpu 1,4 and the engine's serial-vs-parallel equivalence tests; any result
# divergence between the serial and morsel-parallel operators aborts the
# recording, so a committed baseline always reflects correct plans.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -eq 2 ]; then
    exec go run ./cmd/pcbench -compare "$1,$2"
fi

# Guard: morsel-parallel plans must match serial plans bit-exactly before a
# recording is worth keeping (same checks as `make bench-smoke`).
go test -run=NONE -bench=BenchmarkTable4TPCHSkewed -benchtime=1x -cpu 1,4 .
go test -run 'TestJoinParallelSerialIdentical|TestAggParallelSerialIdentical' -cpu 1,4 ./internal/engine

if [ $# -eq 1 ]; then
    out="BENCH_$1.json"
else
    n=0
    while [ -e "BENCH_${n}.json" ]; do
        n=$((n + 1))
    done
    out="BENCH_${n}.json"
fi

exec go run ./cmd/pcbench -json "$out"
