#!/usr/bin/env sh
# metrics_smoke.sh: end-to-end check of the pcsh -metrics endpoint.
# Builds pcsh and pcsmoke, starts the shell with a tiny SSB dataset and a
# metrics listener, runs one query through it, then validates the Prometheus
# exposition (format + required metric families) with pcsmoke.
set -eu

ADDR="${METRICS_ADDR:-127.0.0.1:9187}"
BIN="$(mktemp -d)"
trap 'kill "$PCSH_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT INT TERM

go build -o "$BIN/pcsh" ./cmd/pcsh
go build -o "$BIN/pcsmoke" ./cmd/pcsmoke

# Feed one query, then keep stdin open long enough for the probe to run.
{
    printf 'select count(*) from lineorder;\n'
    sleep 30
} | "$BIN/pcsh" -dataset ssb -sf 0.005 -metrics "$ADDR" &
PCSH_PID=$!

"$BIN/pcsmoke" -retries 60 -delay 500ms \
    -require "predcache_queries_total,predcache_cache_hits_total,go_goroutines" \
    "http://$ADDR/metrics"

kill "$PCSH_PID" 2>/dev/null || true
wait "$PCSH_PID" 2>/dev/null || true
echo "metrics smoke: OK"
