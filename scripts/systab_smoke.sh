#!/usr/bin/env sh
# systab_smoke.sh: end-to-end check of the pc.* system tables through pcsh.
# Boots the shell on a tiny SSB dataset, runs a short workload, then asserts
# that pc.query_log recorded exactly the issued queries and that the cache
# and storage system tables answer through plain SQL.
set -eu

BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT INT TERM

go build -o "$BIN/pcsh" ./cmd/pcsh

OUT="$("$BIN/pcsh" -dataset ssb -sf 0.005 <<'EOF'
select count(*) from lineorder;
select count(*) from lineorder where lo_quantity < 10;
select count(*) from lineorder where lo_quantity < 10;
select count(*) as qcount from pc.query_log;
select count(*) as repeats from pc.query_log where cache_hits > 0;
select count(*) as storcols from pc.table_storage where table_name = 'lineorder';
select enabled from pc.cache_stats;
\q
EOF
)"

# Each probe prints a one-word header line followed by the value line.
val_after() {
    printf '%s\n' "$OUT" | awk -v key="$1" 'f{print $NF; exit} $0 ~ key{f=1}'
}

QCOUNT="$(val_after qcount)"
if [ "$QCOUNT" != "3" ]; then
    echo "systab smoke: pc.query_log counted '$QCOUNT' queries, want 3" >&2
    printf '%s\n' "$OUT" >&2
    exit 1
fi

REPEATS="$(val_after repeats)"
if [ "$REPEATS" -lt 1 ]; then
    echo "systab smoke: no cache hit recorded for the repeated query" >&2
    printf '%s\n' "$OUT" >&2
    exit 1
fi

STORCOLS="$(val_after storcols)"
if [ "$STORCOLS" -lt 1 ]; then
    echo "systab smoke: pc.table_storage empty for lineorder" >&2
    printf '%s\n' "$OUT" >&2
    exit 1
fi

ENABLED="$(val_after enabled)"
if [ "$ENABLED" != "true" ]; then
    echo "systab smoke: pc.cache_stats reports enabled='$ENABLED'" >&2
    printf '%s\n' "$OUT" >&2
    exit 1
fi

echo "systab smoke: OK (3 queries logged, $REPEATS cache-hit query, $STORCOLS storage columns)"
