#!/usr/bin/env sh
# trace_smoke.sh: end-to-end check of trace retention, SLO histograms and
# structured logging through pcsh. Boots the shell with a 1ns slow-query
# threshold (every query's trace is retained as slow) and a JSON log file,
# runs a short workload including a failing query, then asserts via SQL that
# pc.traces / pc.trace_spans / pc.slo / pc.runtime answer, that the failed
# query was retained with its error, and that the log lines carry trace ids.
set -eu

BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT INT TERM

go build -o "$BIN/pcsh" ./cmd/pcsh

LOG="$BIN/pcsh.log"

OUT="$("$BIN/pcsh" -dataset ssb -sf 0.005 -slow 1ns -log "$LOG" <<'EOF'
select count(*) from lineorder;
select count(*) from lineorder where lo_quantity < 10;
select count(*) from nosuch_table;
select count(*) as slowtraces from pc.traces where reason = 'slow';
select count(*) as errtraces from pc.traces where reason = 'error';
select count(*) as joinspans from pc.trace_spans s, pc.query_log q where s.trace_id = q.seq and q.error <> '';
select count(*) as slorows from pc.slo where sample_count > 0;
select count(*) as runtimerows from pc.runtime;
\q
EOF
)"

# Each probe prints a one-word header line followed by the value line.
val_after() {
    printf '%s\n' "$OUT" | awk -v key="$1" 'f{print $NF; exit} $0 ~ key{f=1}'
}

SLOW="$(val_after slowtraces)"
if [ "$SLOW" -lt 2 ]; then
    echo "trace smoke: only '$SLOW' slow traces retained, want >= 2" >&2
    printf '%s\n' "$OUT" >&2
    exit 1
fi

ERRS="$(val_after errtraces)"
if [ "$ERRS" != "1" ]; then
    echo "trace smoke: '$ERRS' error traces retained, want exactly 1" >&2
    printf '%s\n' "$OUT" >&2
    exit 1
fi

JOINSPANS="$(val_after joinspans)"
if [ "$JOINSPANS" -lt 1 ]; then
    echo "trace smoke: failed query has no spans via pc.trace_spans x pc.query_log" >&2
    printf '%s\n' "$OUT" >&2
    exit 1
fi

SLOROWS="$(val_after slorows)"
if [ "$SLOROWS" -lt 1 ]; then
    echo "trace smoke: pc.slo has no populated class" >&2
    printf '%s\n' "$OUT" >&2
    exit 1
fi

RUNTIMEROWS="$(val_after runtimerows)"
if [ "$RUNTIMEROWS" -lt 1 ]; then
    echo "trace smoke: pc.runtime returned no sample" >&2
    printf '%s\n' "$OUT" >&2
    exit 1
fi

# The structured log must carry correlated slow-query and failure lines.
if ! grep -q '"msg":"slow query"' "$LOG"; then
    echo "trace smoke: no slow-query log line in $LOG" >&2
    cat "$LOG" >&2
    exit 1
fi
if ! grep -q '"msg":"query failed"' "$LOG"; then
    echo "trace smoke: no query-failed log line in $LOG" >&2
    cat "$LOG" >&2
    exit 1
fi
if ! grep -q '"trace_id":' "$LOG"; then
    echo "trace smoke: log lines carry no trace_id" >&2
    cat "$LOG" >&2
    exit 1
fi

echo "trace smoke: OK ($SLOW slow traces, $ERRS error trace, $JOINSPANS error spans, $SLOROWS SLO rows)"
