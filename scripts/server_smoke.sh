#!/usr/bin/env sh
# server_smoke.sh: end-to-end check of pcserver over a real TCP socket.
# Builds pcserver and pcclient, starts the server on an ephemeral port with a
# tiny SSB dataset, then drives the wire protocol: results are correct and
# stable across sessions, a repeated template hits the plan cache, prepared
# statements execute, statement errors come back as "err" lines without
# killing the session, pc.sessions sees the live connection, and SIGTERM
# drains to a clean exit.
set -eu

BIN="$(mktemp -d)"
SRV_PID=""
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT INT TERM

go build -o "$BIN/pcserver" ./cmd/pcserver
go build -o "$BIN/pcclient" ./cmd/pcclient

"$BIN/pcserver" -dataset ssb -sf 0.005 -addr 127.0.0.1:0 \
    >"$BIN/server.log" 2>&1 &
SRV_PID=$!

# The server prints "listening on <addr>" once the dataset is loaded and the
# socket is bound; -addr :0 makes the kernel pick the port, so parse it back.
ADDR=""
i=0
while [ $i -lt 120 ]; do
    ADDR="$(awk '/^listening on /{print $3; exit}' "$BIN/server.log")"
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        cat "$BIN/server.log" >&2
        echo "server smoke: FAIL (server exited before listening)" >&2
        exit 1
    fi
    sleep 0.25
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    cat "$BIN/server.log" >&2
    echo "server smoke: FAIL (server never started listening)" >&2
    exit 1
fi

# q STMT: run one statement in a fresh session, print the full framed reply.
q() {
    printf '%s\n' "$1" | "$BIN/pcclient" -addr "$ADDR" -timeout 30s
}
# val STMT: single-row single-column result value (line 3: ok, header, value).
val() {
    q "$1" | sed -n 3p
}

fail() {
    echo "server smoke: FAIL ($1)" >&2
    exit 1
}

# Correctness and cross-session stability: the same count twice, then the
# plan cache must show the repeat as a hit on the normalized template.
N1="$(val 'select count(*) as n from lineorder where lo_quantity < 10')"
N2="$(val 'select count(*) as n from lineorder where lo_quantity < 10')"
[ -n "$N1" ] && [ "$N1" -gt 0 ] 2>/dev/null || fail "bad count: '$N1'"
[ "$N1" = "$N2" ] || fail "count changed across sessions: $N1 vs $N2"
# A third run with a different literal must still be a template hit.
N3="$(val 'select count(*) as n from lineorder where lo_quantity < 50')"
[ "$N3" -ge "$N1" ] 2>/dev/null || fail "looser predicate returned fewer rows: $N3 < $N1"
HITS="$(val 'select count(*) as n from pc.plan_cache where hits > 0')"
[ -n "$HITS" ] && [ "$HITS" -ge 1 ] 2>/dev/null ||
    fail "no plan-cache template recorded a hit (templates-with-hits='$HITS')"

# One session: ping, a prepared statement, a statement error that must not
# kill the session, and the session observing itself in pc.sessions.
"$BIN/pcclient" -addr "$ADDR" -timeout 30s >"$BIN/session.out" <<'EOF'
\ping
\prepare q1 select count(*) as n from customer
\exec q1
select lo_nope from lineorder
select count(*) as n from pc.sessions
\quit
EOF
grep -q '^pong$' "$BIN/session.out" || fail "no pong"
grep -q '^err ' "$BIN/session.out" || fail "bad statement produced no err line"
grep -q '^bye$' "$BIN/session.out" || fail "session died before \\quit (no bye)"
# The last single-column "n" result in the stream is the pc.sessions count.
SESSIONS="$(awk '/^n$/{getline; last=$0} END{print last}' "$BIN/session.out")"
[ -n "$SESSIONS" ] && [ "$SESSIONS" -ge 1 ] 2>/dev/null ||
    fail "pc.sessions did not see the live session: '$SESSIONS'"

# Graceful drain: SIGTERM, clean exit, final stats line.
kill -TERM "$SRV_PID"
RC=0
wait "$SRV_PID" || RC=$?
SRV_PID=""
[ "$RC" -eq 0 ] || {
    cat "$BIN/server.log" >&2
    fail "server exited $RC on SIGTERM"
}
grep -q '^served ' "$BIN/server.log" || fail "no final stats after drain"

echo "server smoke: OK ($N1 rows under lo_quantity<10, plan-cache hits=$HITS)"
