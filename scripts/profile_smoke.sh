#!/usr/bin/env sh
# profile_smoke.sh: end-to-end check of per-query resource attribution.
# Builds pcserver and pcclient, starts the server with an admin endpoint and
# a slow-query profile directory, then asserts the three attribution
# surfaces: pc.query_shapes aggregates attributed CPU per shape, an
# on-demand /profile/cpu capture taken under load carries the query_id/shape
# pprof labels on worker samples, and a query crossing the slow threshold
# leaves a rate-limited CPU profile on disk. /profile/heap must serve a
# parseable heap profile.
set -eu

BIN="$(mktemp -d)"
SRV_PID=""
LOAD_PID=""
trap 'kill "$SRV_PID" "$LOAD_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT INT TERM

go build -o "$BIN/pcserver" ./cmd/pcserver
go build -o "$BIN/pcclient" ./cmd/pcclient

"$BIN/pcserver" -dataset ssb -sf 0.01 -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
    -slow 1ms -profile-dir "$BIN/profiles" >"$BIN/server.log" 2>&1 &
SRV_PID=$!

fail() {
    cat "$BIN/server.log" >&2
    echo "profile smoke: FAIL ($1)" >&2
    exit 1
}

# The server prints the SQL and admin addresses once it is up; -addr/-admin
# :0 make the kernel pick the ports, so parse them back from the log.
ADDR=""
ADMIN=""
i=0
while [ $i -lt 120 ]; do
    ADDR="$(awk '/^listening on /{print $3; exit}' "$BIN/server.log")"
    ADMIN="$(awk '/^admin on /{print $3; exit}' "$BIN/server.log")"
    [ -n "$ADDR" ] && [ -n "$ADMIN" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || fail "server exited before listening"
    sleep 0.25
    i=$((i + 1))
done
[ -n "$ADDR" ] && [ -n "$ADMIN" ] || fail "server never started listening"
ADMIN="${ADMIN#http://}"
ADMIN="${ADMIN%/stats}"

q() {
    printf '%s\n' "$1" | "$BIN/pcclient" -addr "$ADDR" -timeout 30s
}
val() {
    q "$1" | sed -n 3p
}

# A few attributed queries of two shapes: enough for the shape ledger, and —
# with the 1ms slow threshold — enough to trigger the slow-query captor.
q 'select sum(lo_revenue) as s from lineorder where lo_quantity < 30' >/dev/null
q 'select sum(lo_revenue) as s from lineorder where lo_quantity < 10' >/dev/null
q 'select count(*) as n from customer' >/dev/null

# pc.query_shapes: the workload shapes must be there with measured CPU.
SHAPES="$(val 'select count(*) as n from pc.query_shapes where calls > 0 and cpu_us > 0')"
[ -n "$SHAPES" ] && [ "$SHAPES" -ge 2 ] 2>/dev/null ||
    fail "pc.query_shapes has no attributed shapes (got '$SHAPES')"
# The two sum() runs normalize to one shape with two calls.
TOPCALLS="$(val 'select calls, cpu_us from pc.query_shapes order by cpu_us desc limit 1' | awk '{print $1}')"
[ -n "$TOPCALLS" ] && [ "$TOPCALLS" -ge 2 ] 2>/dev/null ||
    fail "top shape did not fold the repeated template (calls='$TOPCALLS')"

# Slow-query capture: the captor runs asynchronously for 1s after the first
# slow query; wait for the profile file to land before touching /profile/cpu
# (the runtime allows one CPU profile at a time).
i=0
while [ $i -lt 40 ]; do
    if ls "$BIN/profiles"/cpu-*.pprof >/dev/null 2>&1; then break; fi
    sleep 0.25
    i=$((i + 1))
done
ls "$BIN/profiles"/cpu-*.pprof >/dev/null 2>&1 || fail "no slow-query profile captured"
# The file appears when the capture starts; give the 1s capture time to
# finish and release the CPU profiler before /profile/cpu claims it.
sleep 1.5

# Labelled on-demand capture: hammer one shape from a background session
# while /profile/cpu samples for 2s, then the profile's tag summary must show
# the query_id and shape label keys on the sampled stacks. CPU sampling is
# statistical, so retry a few times before declaring failure.
i=0
while [ $i -lt 2000 ]; do
    printf 'select sum(lo_revenue) as s from lineorder where lo_quantity < 30\n'
    i=$((i + 1))
done >"$BIN/load.sql"

LABELS_OK=0
attempt=0
while [ $attempt -lt 3 ]; do
    "$BIN/pcclient" -addr "$ADDR" -timeout 120s <"$BIN/load.sql" >/dev/null 2>&1 &
    LOAD_PID=$!
    sleep 0.2
    curl -fsS -o "$BIN/cpu.pprof" "http://$ADMIN/profile/cpu?seconds=2" || true
    kill "$LOAD_PID" 2>/dev/null || true
    wait "$LOAD_PID" 2>/dev/null || true
    LOAD_PID=""
    if [ -s "$BIN/cpu.pprof" ]; then
        TAGS="$(go tool pprof -tags "$BIN/cpu.pprof" 2>/dev/null || true)"
        if printf '%s' "$TAGS" | grep -q 'query_id' &&
            printf '%s' "$TAGS" | grep -q 'shape'; then
            LABELS_OK=1
            break
        fi
    fi
    attempt=$((attempt + 1))
    sleep 1
done
[ "$LABELS_OK" -eq 1 ] || fail "CPU profile carries no query_id/shape labels"

# Heap profile endpoint: must serve a profile go tool pprof can parse.
curl -fsS -o "$BIN/heap.pprof" "http://$ADMIN/profile/heap" ||
    fail "/profile/heap not served"
go tool pprof -top "$BIN/heap.pprof" >/dev/null 2>&1 || fail "heap profile unparseable"

kill -TERM "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

echo "profile smoke: OK (shapes=$SHAPES, top-shape calls=$TOPCALLS, labelled profile after $((attempt + 1)) attempt(s))"
