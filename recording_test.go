package predcache_test

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	predcache "github.com/predcache/predcache"
)

// Failed EXPLAIN and EXPLAIN ANALYZE statements must land in pc.query_log
// with their error and the full statement text, like any other failure.
func TestFailedExplainRecorded(t *testing.T) {
	db := openWithData(t, 100)
	for _, q := range []string{
		"explain select nope from t",
		"explain analyze select nope from t",
		"explain select * from",
	} {
		if _, err := db.Query(q); err == nil {
			t.Fatalf("%s: no error", q)
		}
		recs := db.QueryLog()
		if len(recs) == 0 {
			t.Fatalf("%s: not recorded", q)
		}
		last := recs[len(recs)-1]
		if last.SQL != q {
			t.Fatalf("recorded sql %q, want %q", last.SQL, q)
		}
		if last.Error == "" {
			t.Fatalf("%s: recorded without error", q)
		}
	}
	// Successful EXPLAIN stays unrecorded (it executes nothing); successful
	// EXPLAIN ANALYZE is recorded because it runs the statement.
	n := len(db.QueryLog())
	if _, err := db.Query("explain select count(*) from t"); err != nil {
		t.Fatal(err)
	}
	if got := len(db.QueryLog()); got != n {
		t.Fatalf("successful EXPLAIN was recorded (%d -> %d records)", n, got)
	}
	if _, err := db.Query("explain analyze select count(*) from t"); err != nil {
		t.Fatal(err)
	}
	recs := db.QueryLog()
	if len(recs) != n+1 || recs[len(recs)-1].SQL != "explain analyze select count(*) from t" {
		t.Fatalf("EXPLAIN ANALYZE record missing or wrong: %+v", recs[len(recs)-1])
	}
}

// dmlCount reads the dml SLO class's sample count.
func dmlCount(t *testing.T, db *predcache.DB) uint64 {
	t.Helper()
	var n uint64
	for _, r := range db.SLOReports() {
		if r.Class == "dml" {
			n += r.Count
		}
	}
	return n
}

// Error-path DML (unknown table, bad predicate) must not feed the dml SLO
// histograms: those sub-microsecond no-ops would drag the percentiles to
// zero. Only successful mutations observe.
func TestDMLErrorPathsNotObserved(t *testing.T) {
	db := openWithData(t, 100)
	if n := dmlCount(t, db); n != 0 {
		t.Fatalf("fresh db has %d dml samples", n)
	}
	if _, err := db.DeleteWhere("missing", mustPred(t, "id < 5")); err == nil {
		t.Fatal("delete from missing table succeeded")
	}
	if _, err := db.UpdateWhere("missing", mustPred(t, "id < 5"), func(b *predcache.Batch) {}); err == nil {
		t.Fatal("update of missing table succeeded")
	}
	if err := db.Vacuum("missing"); err == nil {
		t.Fatal("vacuum of missing table succeeded")
	}
	// A predicate over a nonexistent column fails at bind time, after the
	// table lookup — still an error path, still unobserved.
	if _, err := db.DeleteWhere("t", mustPred(t, "nope < 5")); err == nil {
		t.Fatal("delete with bad predicate succeeded")
	}
	if n := dmlCount(t, db); n != 0 {
		t.Fatalf("error-path DML observed %d samples into the dml SLO class", n)
	}

	if _, err := db.DeleteWhere("t", mustPred(t, "id < 5")); err != nil {
		t.Fatal(err)
	}
	if err := db.Vacuum("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.UpdateWhere("t", mustPred(t, "id = 50"), func(b *predcache.Batch) {
		for i := range b.Cols[2].Floats {
			b.Cols[2].Floats[i] = 1
		}
	}); err != nil {
		t.Fatal(err)
	}
	if n := dmlCount(t, db); n != 3 {
		t.Fatalf("successful DML observed %d samples, want 3", n)
	}
}

// The sampler lifecycle must be idempotent and leak-free: double start,
// double stop, stop without start, and concurrent start/stop (run under
// -race) — and the retained samples stay queryable after the sampler halts.
func TestRuntimeSamplerLifecycle(t *testing.T) {
	db := openWithData(t, 100)
	db.StopRuntimeSampler() // stop without start: no panic

	before := runtime.NumGoroutine()
	db.StartRuntimeSampler(time.Hour) // samples once immediately
	db.StartRuntimeSampler(time.Hour) // double start replaces (and stops) the first
	db.StopRuntimeSampler()
	db.StopRuntimeSampler() // double stop

	// The halted sampler's ring must remain queryable (the documented
	// contract of StopRuntimeSampler).
	if samples := db.RuntimeSamples(); len(samples) == 0 {
		t.Fatal("samples gone after StopRuntimeSampler")
	}
	res := one(t, db, "select count(*) as n from pc.runtime")
	if n := intCell(t, res, 0, "n"); n == 0 {
		t.Fatal("pc.runtime empty after StopRuntimeSampler")
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				db.StartRuntimeSampler(time.Hour)
				db.StopRuntimeSampler()
			}
		}()
	}
	wg.Wait()
	db.StopRuntimeSampler()

	// Collector goroutines must all have exited (allow scheduler slack).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines %d -> %d: sampler leak", before, runtime.NumGoroutine())
}

// EXPLAIN output still renders through Query (regression guard for the
// explain-path restructure).
func TestExplainThroughQueryStillRenders(t *testing.T) {
	db := openWithData(t, 100)
	res := one(t, db, "explain select count(*) from t where id < 10")
	if res.NumRows() == 0 || !strings.Contains(res.Format(50), "Scan") {
		t.Fatalf("explain output:\n%s", res.Format(50))
	}
}
