# predcache build and verification targets. All of them use only the Go
# toolchain: the module has zero external dependencies, including its own
# static-analysis suite (cmd/pclint).

GO ?= go

.PHONY: all build test race stress test-debug vet lint lint-sarif smoke systab-smoke trace-smoke server-smoke profile-smoke bench-smoke check clean

all: build

build:
	$(GO) build ./...

# Unit tests (tier-1 verification).
test:
	$(GO) test ./...

# Full suite under the race detector; includes the concurrency stress tests.
race:
	$(GO) test -race ./...

# Just the DML-vs-vacuum and concurrency stress tests, under the race
# detector with the pcdebug assertions compiled in — the harshest setting.
# The kernel equivalence oracles ride along: they hammer the pooled scan
# scratch and the encoded/decoded split from many goroutines.
stress:
	$(GO) test -race -tags pcdebug -run 'TestDMLVacuumRace|TestConcurrentQueriesAndDML|TestRaceStressParallelScans|TestRaceStressParallelOperators|TestKernel' -count=2 .
	$(GO) test -race -tags pcdebug -run 'TestKernel|TestEvalPredRanges|TestReadIntRange|TestReadFloatRange' ./internal/storage ./internal/expr

# Tests with the pcdebug build tag: runtime invariant assertions (row-range
# shape, zone-map bounds, MVCC monotonicity) are compiled in and panic on
# violation.
test-debug:
	$(GO) test -tags pcdebug ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: lock discipline and whole-program lock
# ordering, error wrapping, recycled buffer aliasing, goroutine lifecycle,
# transitive hot-path allocation (pclint:noalloc), and sync.Pool lifetimes.
# One process analyzes both tag configurations (default and pcdebug) and
# exits non-zero on any finding not absorbed by .pclint-baseline.json — and
# on stale baseline entries, so the baseline can only shrink.
lint:
	$(GO) run ./cmd/pclint -matrix=';pcdebug' ./...

# lint plus a SARIF report for code-scanning upload.
lint-sarif:
	$(GO) run ./cmd/pclint -matrix=';pcdebug' -sarif pclint.sarif ./...

# End-to-end metrics check: starts pcsh with -metrics, runs a query, and
# validates the Prometheus exposition with cmd/pcsmoke.
smoke:
	./scripts/metrics_smoke.sh

# End-to-end system-table check: boots pcsh, runs a workload, and asserts
# pc.query_log / pc.cache_stats / pc.table_storage answer through SQL.
systab-smoke:
	./scripts/systab_smoke.sh

# End-to-end observability check: boots pcsh with a 1ns slow threshold and a
# JSON log file, runs a workload with a failing query, and asserts trace
# retention (pc.traces / pc.trace_spans), SLO histograms (pc.slo), runtime
# health (pc.runtime) and trace-correlated log lines.
trace-smoke:
	./scripts/trace_smoke.sh

# End-to-end network check: boots pcserver on an ephemeral TCP port, drives
# the wire protocol with cmd/pcclient (queries, prepared statements, error
# recovery, pc.sessions / pc.plan_cache visibility), and SIGTERM-drains.
server-smoke:
	./scripts/server_smoke.sh

# End-to-end attribution check: boots pcserver with an admin endpoint, a 1ms
# slow threshold and a profile directory, then asserts pc.query_shapes
# aggregates attributed CPU, /profile/cpu captured under load carries the
# query_id/shape pprof labels, a slow query leaves a rate-limited profile on
# disk, and /profile/heap parses.
profile-smoke:
	./scripts/profile_smoke.sh

# One-iteration compile-and-run of the scan benchmarks: catches bit-rot in
# the benchmark harness without paying full measurement time. The Table4
# run exercises the morsel-parallel join/agg path at 1 and 4 procs, and the
# engine equivalence tests fail the target on any serial-vs-parallel result
# divergence (bit-exact, including float payloads).
bench-smoke:
	$(GO) test -run=NONE -bench=BenchmarkScan -benchtime=1x .
	$(GO) test -run=NONE -bench=BenchmarkTable4TPCHSkewed -benchtime=1x -cpu 1,4 .
	$(GO) test -run 'TestJoinParallelSerialIdentical|TestAggParallelSerialIdentical' -cpu 1,4 ./internal/engine

# Everything CI runs.
check: build vet lint test race stress test-debug bench-smoke smoke systab-smoke trace-smoke server-smoke profile-smoke

clean:
	$(GO) clean ./...
