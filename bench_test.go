package predcache_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	predcache "github.com/predcache/predcache"
	"github.com/predcache/predcache/internal/bench"
)

// benchExperiment runs one harness experiment per iteration at the fast
// scale; `go test -bench .` therefore regenerates every table and figure of
// the paper (use cmd/pcbench for the full-scale runs).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := bench.FastConfig()
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(cfg, io.Discard)
		if err := r.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper table/figure ---

func BenchmarkTable1Criteria(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkFig1QueryRepetition(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFig2StatementMix(b *testing.B)    { benchExperiment(b, "fig2") }
func BenchmarkTable2Statements(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkFig3ReadWrite(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig4QueryVsScan(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig5BySize(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig6ResultCache(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7HitVsUpdate(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkTable3Memory(b *testing.B)        { benchExperiment(b, "table3") }
func BenchmarkFig13WorkloadA(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14WorkloadB(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15BuildOverhead(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkTable4TPCHSkewed(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkFig16SemiJoinKeys(b *testing.B)   { benchExperiment(b, "fig16") }
func BenchmarkFig17EndToEnd(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkFig18SortingPlusPC(b *testing.B)  { benchExperiment(b, "fig18") }

// --- micro-benchmarks of the hot paths ---

// benchDB builds a clustered single-table database for scan benchmarks.
func benchDB(b *testing.B, rows int) *predcache.DB {
	b.Helper()
	db := predcache.Open()
	schema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "grp", Type: predcache.String},
		{Name: "val", Type: predcache.Float64},
	}
	if err := db.CreateTable("t", schema); err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	batch := predcache.NewBatch(schema)
	for i := 0; i < rows; i++ {
		batch.Cols[0].Ints = append(batch.Cols[0].Ints, int64(i))
		batch.Cols[1].Strings = append(batch.Cols[1].Strings, fmt.Sprintf("g%02d", (i/4000)%25))
		batch.Cols[2].Floats = append(batch.Cols[2].Floats, float64(r.Intn(10000))/100)
	}
	batch.N = rows
	if err := db.Insert("t", batch); err != nil {
		b.Fatal(err)
	}
	return db
}

const microQuery = "select count(*) as n from t where grp = 'g07' and val > 50"

func BenchmarkScanCold(b *testing.B) {
	db := benchDB(b, 400000)
	plan, err := db.Plan(microQuery)
	if err != nil {
		b.Fatal(err)
	}
	cold := predcache.Open(predcache.WithoutPredicateCache())
	_ = cold
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.PredicateCache().Clear()
		if _, err := db.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanWarm(b *testing.B) {
	db := benchDB(b, 400000)
	plan, err := db.Plan(microQuery)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Run(plan); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanNoCache(b *testing.B) {
	db := predcache.Open(predcache.WithoutPredicateCache())
	schema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "grp", Type: predcache.String},
		{Name: "val", Type: predcache.Float64},
	}
	if err := db.CreateTable("t", schema); err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	batch := predcache.NewBatch(schema)
	for i := 0; i < 400000; i++ {
		batch.Cols[0].Ints = append(batch.Cols[0].Ints, int64(i))
		batch.Cols[1].Strings = append(batch.Cols[1].Strings, fmt.Sprintf("g%02d", (i/4000)%25))
		batch.Cols[2].Floats = append(batch.Cols[2].Floats, float64(r.Intn(10000))/100)
	}
	batch.N = 400000
	if err := db.Insert("t", batch); err != nil {
		b.Fatal(err)
	}
	plan, err := db.Plan(microQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: range granularity sweep — how maxRanges trades memory for
// precision (DESIGN.md §5).
func BenchmarkRangeGranularity(b *testing.B) {
	for _, maxRanges := range []int{16, 256, 4096, 16384} {
		b.Run(fmt.Sprintf("maxRanges=%d", maxRanges), func(b *testing.B) {
			db := predcache.Open(predcache.WithCacheConfig(
				predcache.CacheConfig{Kind: predcache.RangeIndex, MaxRanges: maxRanges}))
			seedBench(b, db)
			plan, err := db.Plan(microQuery)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.Run(plan); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Run(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: bitmap granularity sweep (rows per block).
func BenchmarkBitmapGranularity(b *testing.B) {
	for _, rpb := range []int{250, 1000, 4000, 16000} {
		b.Run(fmt.Sprintf("rowsPerBlock=%d", rpb), func(b *testing.B) {
			db := predcache.Open(predcache.WithCacheConfig(
				predcache.CacheConfig{Kind: predcache.BitmapIndex, RowsPerBlock: rpb}))
			seedBench(b, db)
			plan, err := db.Plan(microQuery)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.Run(plan); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Run(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func seedBench(b *testing.B, db *predcache.DB) {
	b.Helper()
	schema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "grp", Type: predcache.String},
		{Name: "val", Type: predcache.Float64},
	}
	if err := db.CreateTable("t", schema); err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	batch := predcache.NewBatch(schema)
	for i := 0; i < 200000; i++ {
		batch.Cols[0].Ints = append(batch.Cols[0].Ints, int64(i))
		batch.Cols[1].Strings = append(batch.Cols[1].Strings, fmt.Sprintf("g%02d", (i/4000)%25))
		batch.Cols[2].Floats = append(batch.Cols[2].Floats, float64(r.Intn(10000))/100)
	}
	batch.N = 200000
	if err := db.Insert("t", batch); err != nil {
		b.Fatal(err)
	}
}

// Ablation: cost-based admission (DESIGN.md §5) — AdmitAfter avoids paying
// entry memory for one-off scans, MaxSelectivity refuses unselective ones.
func BenchmarkAdmissionPolicy(b *testing.B) {
	for _, cfg := range []struct {
		name string
		c    predcache.CacheConfig
	}{
		{"always", predcache.CacheConfig{Kind: predcache.BitmapIndex}},
		{"admitAfter2", predcache.CacheConfig{Kind: predcache.BitmapIndex, AdmitAfter: 2}},
		{"maxSel50", predcache.CacheConfig{Kind: predcache.BitmapIndex, MaxSelectivity: 0.5}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			db := predcache.Open(predcache.WithCacheConfig(cfg.c))
			seedBench(b, db)
			// A mixed stream: one hot query, many one-off queries.
			hot, err := db.Plan(microQuery)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				oneOff, err := db.Plan(fmt.Sprintf(
					"select count(*) from t where val > %d", i%100))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := db.Run(oneOff); err != nil {
					b.Fatal(err)
				}
				if _, err := db.Run(hot); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(db.CacheStats().MemBytes), "cacheBytes")
		})
	}
}
