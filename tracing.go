package predcache

import (
	"time"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/obs"
)

// Re-exported observability types: the public surface of trace retention,
// latency SLOs, runtime health and structured logging.
type (
	// RetainedTrace is one tail-sampled query trace (a pc.traces row plus
	// its spans).
	RetainedTrace = obs.RetainedTrace
	// TraceSpan is one span of a retained trace (a pc.trace_spans row).
	TraceSpan = obs.Span
	// TraceStoreStats reports the trace store's retention counters.
	TraceStoreStats = obs.TraceStoreStats
	// SLOReport is one pc.slo row: a (class, cache-outcome) latency summary.
	SLOReport = obs.SLOReport
	// SLOTarget is one latency objective for CheckSLO.
	SLOTarget = obs.SLOTarget
	// SLOViolation is one exceeded objective returned by CheckSLO.
	SLOViolation = obs.SLOViolation
	// RuntimeSample is one pc.runtime row: a process-health reading.
	RuntimeSample = obs.RuntimeSample
	// Logger is the nil-safe structured logger (log/slog) the engine emits
	// query-correlated lines through.
	Logger = obs.Logger
)

// Query classes tracked by the SLO histograms (pc.slo.query_class).
const (
	ClassPoint = obs.ClassPoint
	ClassRange = obs.ClassRange
	ClassAgg   = obs.ClassAgg
	ClassDML   = obs.ClassDML
)

// NewLogger and NewJSONLogger construct loggers for WithLogger/SetLogger.
var (
	NewLogger     = obs.NewLogger
	NewJSONLogger = obs.NewJSONLogger
)

// SetLogger installs (or, with nil, removes) the structured logger the
// engine writes slow-query, failure and lifecycle lines to. Every line that
// concerns a query carries query_id and trace_id (the same value), so a log
// line is one SQL filter away from its retained trace:
//
//	SELECT * FROM pc.trace_spans WHERE trace_id = 17
//
// Safe to call at any time from any goroutine.
func (db *DB) SetLogger(l *Logger) {
	db.logger.Store(l)
}

// Logger returns the installed structured logger (nil when none); the
// returned logger is nil-safe.
func (db *DB) Logger() *Logger {
	return db.logger.Load()
}

// RetainedTraces returns the tail-sampled traces currently retained, oldest
// first — the same rows served by pc.traces. Treat the traces as immutable.
func (db *DB) RetainedTraces() []*RetainedTrace {
	return db.traces.Traces()
}

// TraceByID returns the retained trace for a pc.query_log seq, or nil when
// it was never retained or has been evicted.
func (db *DB) TraceByID(id int64) *RetainedTrace {
	return db.traces.Trace(id)
}

// TraceStats reports the trace store's retention counters.
func (db *DB) TraceStats() TraceStoreStats {
	return db.traces.Stats()
}

// RenderTrace formats a retained trace's span tree as indented text (the
// pcsh \trace renderer).
func RenderTrace(rt *RetainedTrace) string {
	if rt == nil {
		return ""
	}
	return obs.RenderSpans(rt.Spans)
}

// SLOReports summarizes every (query class, cache outcome) latency histogram
// — the same rows served by pc.slo.
func (db *DB) SLOReports() []SLOReport {
	return db.slo.Snapshot()
}

// CheckSLO evaluates latency objectives against the live distributions and
// returns every violation (empty means all objectives hold). Violations
// carry the tail exemplar trace ID for drill-down via TraceByID or
// pc.trace_spans.
func (db *DB) CheckSLO(targets []SLOTarget) []SLOViolation {
	return db.slo.Check(targets)
}

// StartRuntimeSampler begins sampling process health (goroutines, heap, RSS,
// GC pauses, scan-scratch pool efficiency) every interval (<= 0 selects
// obs.DefaultRuntimeInterval) into the bounded ring behind pc.runtime. It
// replaces and stops any previous sampler; call StopRuntimeSampler to halt.
// The leak sentinels (WithSentinelConfig, pc.alerts) piggyback on the
// sampling cadence: each retained sample is evaluated against the goroutine-
// growth, heap-growth and pool-churn watchdogs.
func (db *DB) StartRuntimeSampler(interval time.Duration) {
	// The sampler reads the engine's scan-scratch pool counters with every
	// sample, so pool-efficiency regressions show up in pc.runtime.
	sent := obs.NewSentinels(db.sentinelCfg, db.alerts, db.logger.Load)
	old := db.runtime.Swap(obs.StartRuntimeCollectorWith(interval, engine.ScratchPoolStats, sent))
	old.Stop()
}

// StopRuntimeSampler halts the health sampler, waiting for its goroutine to
// exit. The retained samples remain queryable via pc.runtime. Safe to call
// repeatedly and without a prior Start: Stop on a nil or already-stopped
// collector is a no-op.
func (db *DB) StopRuntimeSampler() {
	// Keep the stopped collector loaded (Load, not Swap(nil)): its ring is
	// what pc.runtime and RuntimeSamples serve after the sampler halts. A
	// concurrent Start cannot leak a collector either way — Start's Swap
	// stops whichever collector it displaces.
	db.runtime.Load().Stop()
}

// RuntimeSamples returns the retained health samples, oldest first — the
// same rows served by pc.runtime (nil when the sampler never ran).
func (db *DB) RuntimeSamples() []RuntimeSample {
	return db.runtime.Load().Samples()
}

// SampleRuntime takes one health reading synchronously. With no sampler
// running it starts none: the sample is computed and returned but only
// retained when a sampler's ring exists.
func (db *DB) SampleRuntime() RuntimeSample {
	if c := db.runtime.Load(); c != nil {
		return c.SampleNow()
	}
	return obs.ReadRuntimeSample(engine.ScratchPoolStats)
}
