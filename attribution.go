package predcache

import (
	"context"
	"strconv"

	"github.com/predcache/predcache/internal/obs"
)

// Per-query resource attribution (DESIGN.md §16): every SQL-originated
// execution runs under pprof goroutine labels (query_id, shape, session),
// measures its CPU and allocation footprint, and folds the result into the
// pc.query_shapes heavy-hitter ledger. The leak sentinels ride the runtime
// sampler (StartRuntimeSampler) and surface transitions as pc.alerts.

// Re-exported attribution types.
type (
	// ShapeRow is one pc.query_shapes row: a shape's resource ledger.
	ShapeRow = obs.ShapeRow
	// Alert is one pc.alerts row: a leak-sentinel transition.
	Alert = obs.Alert
	// SentinelConfig sets the leak-sentinel thresholds for
	// WithSentinelConfig (zero fields keep their defaults).
	SentinelConfig = obs.SentinelConfig
)

// Sentinel names appearing in pc.alerts.sentinel.
const (
	SentinelGoroutines = obs.SentinelGoroutines
	SentinelHeap       = obs.SentinelHeap
	SentinelPoolChurn  = obs.SentinelPoolChurn
)

// WithQueryShapeCapacity bounds the pc.query_shapes ledger to n shapes
// (0 keeps the default, obs.DefaultShapeCapacity). When full, observing a
// new shape evicts the retained shape with the least total CPU.
func WithQueryShapeCapacity(n int) Option {
	return func(db *DB) { db.shapeCap = n }
}

// WithSentinelConfig overrides the leak-sentinel thresholds evaluated by the
// runtime sampler (zero fields keep their defaults). The sentinels only run
// while StartRuntimeSampler is active.
func WithSentinelConfig(cfg SentinelConfig) Option {
	return func(db *DB) { db.sentinelCfg = cfg }
}

// WithProfileCapture enables automatic, rate-limited CPU profile capture on
// slow queries: profiles land in dir as cpu-NNN-q<seq>.pprof and carry the
// query_id/shape/session labels. An unusable directory logs an error at Open
// and disables capture rather than failing.
func WithProfileCapture(dir string) Option {
	return func(db *DB) { db.profileDir = dir }
}

// QueryShapes returns the per-shape resource ledger ranked by total
// attributed CPU, heaviest first — the same rows served by pc.query_shapes.
func (db *DB) QueryShapes() []ShapeRow {
	return db.shapes.Snapshot()
}

// Alerts returns the retained leak-sentinel transitions, oldest first — the
// same rows served by pc.alerts.
func (db *DB) Alerts() []Alert {
	return db.alerts.Alerts()
}

// LastRuntimeSample returns the most recent retained health sample (zero
// value when no sampler has run) without triggering a fresh ReadMemStats —
// the accessor metric scrapes are routed through.
func (db *DB) LastRuntimeSample() RuntimeSample {
	return db.runtime.Load().Last()
}

// sessionKey is the context key ContextWithSession stores the session label
// under.
type sessionKey struct{}

// ContextWithSession returns a context whose queries are attributed to the
// given session label (the network server stamps "s<id>" per connection).
// The label appears as the session pprof label and is bounded-cardinality by
// construction: one value per connection, not per query.
func ContextWithSession(ctx context.Context, session string) context.Context {
	return context.WithValue(ctx, sessionKey{}, session)
}

// sessionFromCtx extracts the session label ("" when none).
func sessionFromCtx(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	if s, ok := ctx.Value(sessionKey{}).(string); ok {
		return s
	}
	return ""
}

// queryIDLabel renders the query_id pprof label for a reserved sequence
// number ("q17"); unreserved executions (query logging disabled) are "q-".
func queryIDLabel(seq int64) string {
	if seq < 0 {
		return "q-"
	}
	return "q" + strconv.FormatInt(seq, 10)
}
