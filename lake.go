package predcache

import (
	"github.com/predcache/predcache/internal/lake"
	"github.com/predcache/predcache/internal/sql"
)

// Lake-table API (§4.5 of the paper): predicate caching over an
// Iceberg/Delta-style table the engine does not own. Writers commit whole
// immutable data files; the cache indexes which files — and which row
// ranges within them — qualify for each predicate. File additions extend
// entries, file removals need no invalidation at all.
type (
	// LakeTable is an open-format table: immutable data files + manifest.
	LakeTable = lake.Table
	// LakeCache is a predicate cache over lake tables.
	LakeCache = lake.Cache
	// LakeMatch identifies one qualifying row (file id, row offset).
	LakeMatch = lake.Match
	// LakeScanStats reports the work one lake scan performed.
	LakeScanStats = lake.ScanStats
)

// NewLakeTable creates an empty lake table.
func NewLakeTable(name string, schema Schema) *LakeTable { return lake.NewTable(name, schema) }

// NewLakeCache creates a lake predicate cache; maxRanges bounds the
// per-file qualifying-range lists.
func NewLakeCache(maxRanges int) *LakeCache { return lake.NewCache(maxRanges) }

// LakeScan evaluates a filter condition (WHERE-clause syntax) over a lake
// table, using cache (nil = cold) to skip non-qualifying files and rows.
func LakeScan(t *LakeTable, where string, cache *LakeCache) ([]LakeMatch, LakeScanStats, error) {
	pred, err := sql.ParsePredicate(where)
	if err != nil {
		return nil, LakeScanStats{}, err
	}
	return lake.Scan(t, pred, cache)
}
